package photoshare_test

import (
	"strings"
	"testing"
	"time"

	"rsskv/internal/core"
	"rsskv/internal/history"
	"rsskv/internal/photoshare"
	"rsskv/internal/queue"
	"rsskv/internal/server"
)

// liveStack is the three-daemon composition deployment on loopback
// sockets: albums and photos on separate rsskvd instances, plus the live
// queue service.
type liveStack struct {
	albums, photos *server.Server
	queue          *queue.Server
}

// startStack boots the three daemons; poLag > 0 runs both KV daemons
// under the PO-serializability ablation.
func startStack(t *testing.T, poLag time.Duration) *liveStack {
	t.Helper()
	st := &liveStack{
		albums: server.New(server.Config{Shards: 2, POReadLag: poLag}),
		photos: server.New(server.Config{Shards: 2, POReadLag: poLag}),
		queue:  queue.NewServer(queue.ServerConfig{Acceptors: 1}),
	}
	for name, start := range map[string]func(string) error{
		"albums": st.albums.Start, "photos": st.photos.Start, "queue": st.queue.Start,
	} {
		if err := start("127.0.0.1:0"); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
	}
	t.Cleanup(func() {
		st.albums.Close()
		st.photos.Close()
		st.queue.Close()
	})
	return st
}

func (st *liveStack) config(fences bool) photoshare.LiveConfig {
	return photoshare.LiveConfig{
		AlbumAddr: st.albums.Addr(),
		PhotoAddr: st.photos.Addr(),
		QueueAddr: st.queue.Addr(),
		Fences:    fences,
		Propagate: fences,
		Adders:    2,
		Viewers:   2,
		Photos:    25,
		Probes:    8,
		Seed:      42,
	}
}

// TestLiveCompositionFencedAccepted is the accept half of the
// falsifiability pair: the photo-share workload across two rsskvd daemons
// and the live queue, with libRSS fences at every service switch, produces
// a merged cross-service history the RSS checker accepts, zero invariant
// violations, and a nonzero fence count (the switches really fence).
func TestLiveCompositionFencedAccepted(t *testing.T) {
	st := startStack(t, 0)
	res, err := photoshare.RunLive(st.config(true))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Processed != 2*25 {
		t.Errorf("worker processed %d photos, want %d", res.Processed, 2*25)
	}
	if res.V.I1 != 0 || res.V.I2 != 0 || res.V.A2 != 0 || res.V.A3 != 0 {
		t.Errorf("fenced run observed violations: %v", &res.V)
	}
	if res.V.A2Checks == 0 || res.V.A3Checks == 0 {
		t.Errorf("probes did not run: %v", &res.V)
	}
	if res.Fences == 0 {
		t.Error("no libRSS fences were invoked despite constant service switches")
	}
	if err := history.Check(res.H, core.RSS); err != nil {
		t.Errorf("fenced composition history rejected: %v", err)
	}
}

// TestLiveCompositionUnfencedRejected is the reject half: the identical
// workload with fences off and the daemons under the PO ablation (each
// service session-ordered but not real-time-ordered — the configuration
// the missing fences can no longer repair, per Perrin et al.'s
// non-composition result) must observe I2 and produce a merged history the
// checker REJECTS with an I2/A2-shaped cycle through the queue or the
// out-of-band call.
func TestLiveCompositionUnfencedRejected(t *testing.T) {
	st := startStack(t, 250*time.Millisecond)
	cfg := st.config(false)
	res, err := photoshare.RunLive(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Fences != 0 {
		t.Errorf("fences-off run invoked %d fences", res.Fences)
	}
	// The worker dequeues each photo ID milliseconds after its enqueue —
	// far inside the 250ms lag — so its photo read misses the completed
	// write: the paper's I2, live.
	if res.V.I2 == 0 {
		t.Error("unfenced PO composition observed no I2 violations; the ablation was not observable")
	}
	checkErr := history.Check(res.H, core.RSS)
	if checkErr == nil {
		t.Fatal("unfenced PO composition history passed the RSS check; want rejection")
	}
	t.Logf("rejected as intended: %v", checkErr)
	// The cycle must span the composition: it should mention the queue's
	// edges or the out-of-band call, not only intra-KV constraints.
	msg := checkErr.Error()
	if !strings.Contains(msg, "dequeue") && !strings.Contains(msg, "enqueue") &&
		!strings.Contains(msg, "message passing") && !strings.Contains(msg, "read-initial") {
		t.Logf("note: cycle did not name a cross-service edge: %s", msg)
	}
}

// TestLiveCompositionUnfencedHonestServersVacuouslyRSS documents the
// locality caveat: with honest (strictly serializable) daemons even the
// unfenced composition stays RSS on a single host — strict
// serializability, like linearizability, composes. The fences become
// load-bearing exactly when the services relax real-time order, which is
// why the reject direction pairs fences-off with the PO ablation.
func TestLiveCompositionUnfencedHonestServersVacuouslyRSS(t *testing.T) {
	st := startStack(t, 0)
	cfg := st.config(false)
	cfg.Photos = 12
	cfg.Probes = 4
	res, err := photoshare.RunLive(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.V.I2 != 0 {
		t.Errorf("honest unfenced run observed I2=%d, want 0", res.V.I2)
	}
	if err := history.Check(res.H, core.RSS); err != nil {
		t.Errorf("honest unfenced composition rejected: %v", err)
	}
}
