// Package photoshare is the paper's running example application (§2.2 and
// Table 1): users add photos to albums stored in a transactional key-value
// store, and an asynchronous worker fetches newly added photos through a
// messaging service to generate thumbnails.
//
// The application checks the paper's two invariants on every operation:
//
//	I1: an album never references a photo whose data is null.
//	I2: a worker never dequeues a photo ID whose data reads as null.
//
// and detects the user-visible anomalies:
//
//	A2: Alice adds a photo and tells Bob; Bob does not see it.
//	A3: Alice sees Charlie's (still-committing) photo and tells Bob; Bob
//	    does not see it.
//
// Running it against Spanner (strict serializability), Spanner-RSS, and
// the PO-serializable ablation regenerates Table 1's matrix: both
// invariants hold under strict serializability and RSS (I2 requires libRSS
// fences when crossing into the messaging service); PO-serializability
// breaks I2; A3 becomes temporarily possible under RSS; A2 is impossible
// under both strict serializability and RSS.
package photoshare

import (
	"fmt"
	"strings"

	"rsskv/internal/core"
	"rsskv/internal/librss"
	"rsskv/internal/queue"
	"rsskv/internal/sim"
	"rsskv/internal/spanner"
	"rsskv/internal/truetime"
)

// Service names registered with libRSS.
const (
	KVService    = "photos-kv"
	QueueService = "thumbnail-queue"
)

// AlbumKey and PhotoKey name the application's keys.
func AlbumKey(user string) string { return "album:" + user }
func PhotoKey(id string) string   { return "photo:" + id }
func photoList(album string) []string {
	if album == "" {
		return nil
	}
	return strings.Split(album, ",")
}

// Violations tallies invariant violations and anomalies observed.
type Violations struct {
	I1       int64 // album references a null photo
	I2       int64 // worker read a null photo
	A2       int64 // Bob missed Alice's completed photo
	A3       int64 // Bob missed a photo Alice had already observed
	A2Checks int64
	A3Checks int64
}

func (v *Violations) String() string {
	return fmt.Sprintf("I1=%d I2=%d A2=%d/%d A3=%d/%d", v.I1, v.I2, v.A2, v.A2Checks, v.A3, v.A3Checks)
}

// WebServer is an application process (Figure 1) handling photo-sharing
// requests against the KV store and the thumbnail queue, with libRSS
// coordinating cross-service fences.
type WebServer struct {
	KV    *spanner.Client
	Queue *queue.Client
	Lib   *librss.Library
	V     *Violations

	// UseFences disables libRSS when false (ablation: shows why
	// composition needs fences).
	UseFences bool

	ctx *sim.Context // context of the in-flight request
}

// NewWebServer wires a web server's clients and registers services.
func NewWebServer(kv *spanner.Client, q *queue.Client, v *Violations, useFences bool) *WebServer {
	ws := &WebServer{KV: kv, Queue: q, Lib: librss.New(), V: v, UseFences: useFences}
	ws.Lib.RegisterService(KVService, core.FenceFunc(func(done func()) { ws.kvFence(done) }))
	ws.Lib.RegisterService(QueueService, core.NoopFence)
	return ws
}

// kvFence adapts the Spanner-RSS fence; it needs a sim context, which the
// web server stores per-request.
func (ws *WebServer) kvFence(done func()) {
	ws.KV.Fence(ws.ctx, func(ctx *sim.Context) {
		ws.ctx = ctx
		done()
	})
}

// AddPhoto adds a photo to a user's album — the §2.2 read-write
// transaction — and then enqueues a thumbnail request. done receives the
// causal baggage to attach to the user's response.
func (ws *WebServer) AddPhoto(ctx *sim.Context, user, id, data string, done func(*sim.Context)) {
	ws.ctx = ctx
	ws.start(KVService, func() {
		ws.KV.ReadWriteFunc(ws.ctx, []string{AlbumKey(user)}, func(reads map[string]string) []spanner.KV {
			album := reads[AlbumKey(user)]
			if album == "" {
				album = id
			} else {
				album += "," + id
			}
			return []spanner.KV{
				{Key: PhotoKey(id), Value: data},
				{Key: AlbumKey(user), Value: album},
			}
		}, func(ctx *sim.Context, _ spanner.RWResult) {
			ws.ctx = ctx
			ws.start(QueueService, func() {
				ws.Queue.Enqueue(ws.ctx, id, func(ctx *sim.Context, _ int64) {
					ws.ctx = ctx
					done(ctx)
				})
			})
		})
	})
}

// ViewAlbum reads a user's album and all referenced photos in one RO
// transaction, checking I1, and reports the set of photo IDs seen.
func (ws *WebServer) ViewAlbum(ctx *sim.Context, user string, done func(*sim.Context, []string)) {
	ws.ctx = ctx
	ws.start(KVService, func() {
		// Two-step navigation: read the album, then the photos it lists.
		ws.KV.ReadOnly(ws.ctx, []string{AlbumKey(user)}, func(ctx *sim.Context, r spanner.ROResult) {
			ws.ctx = ctx
			ids := photoList(r.Vals[AlbumKey(user)])
			if len(ids) == 0 {
				done(ctx, nil)
				return
			}
			keys := make([]string, len(ids))
			for i, id := range ids {
				keys[i] = PhotoKey(id)
			}
			ws.start(KVService, func() {
				ws.KV.ReadOnly(ws.ctx, keys, func(ctx *sim.Context, r2 spanner.ROResult) {
					ws.ctx = ctx
					for _, id := range ids {
						if r2.Vals[PhotoKey(id)] == "" {
							ws.V.I1++
						}
					}
					done(ctx, ids)
				})
			})
		})
	})
}

// Recv implements sim.Handler: the web server is one application process.
func (ws *WebServer) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	switch msg.(type) {
	case queue.EnqueueReply, queue.DequeueReply:
		ws.Queue.Recv(ctx, from, msg)
	default:
		ws.KV.Recv(ctx, from, msg)
	}
}

// start runs libRSS's StartTransaction, or skips fencing when disabled.
func (ws *WebServer) start(service string, run func()) {
	if !ws.UseFences {
		run()
		return
	}
	ws.Lib.StartTransaction(service, run)
}

// Baggage exports the server's causal context for out-of-band propagation
// to another process (§4.2): t_min plus the last service.
func (ws *WebServer) Baggage() (tmin truetime.Timestamp, lastService string) {
	return ws.KV.TMin(), ws.Lib.LastService()
}

// AcceptBaggage merges causal context received from another process.
func (ws *WebServer) AcceptBaggage(tmin truetime.Timestamp, lastService string) {
	ws.KV.SetTMin(tmin)
	if lastService != "" {
		ws.Lib.SetLastService(lastService)
	}
}

// Worker is the asynchronous thumbnail processor: it polls the queue and
// reads each photo from the KV store, checking I2.
type Worker struct {
	KV        *spanner.Client
	Queue     *queue.Client
	Lib       *librss.Library
	V         *Violations
	UseFences bool
	Processed int64

	PollInterval sim.Time
	stopped      bool
}

// NewWorker wires a worker process.
func NewWorker(kv *spanner.Client, q *queue.Client, v *Violations, useFences bool) *Worker {
	wk := &Worker{KV: kv, Queue: q, Lib: librss.New(), V: v, UseFences: useFences, PollInterval: sim.Ms(5)}
	wk.Lib.RegisterService(KVService, core.NoopFence) // worker never needs to fence the KV for this flow
	wk.Lib.RegisterService(QueueService, core.NoopFence)
	return wk
}

// Init implements sim.Initer: the worker starts polling.
func (w *Worker) Init(ctx *sim.Context) { w.poll(ctx) }

// Recv implements sim.Handler.
func (w *Worker) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	switch msg.(type) {
	case queue.EnqueueReply, queue.DequeueReply:
		w.Queue.Recv(ctx, from, msg)
	default:
		w.KV.Recv(ctx, from, msg)
	}
}

// Stop halts polling after the current iteration.
func (w *Worker) Stop() { w.stopped = true }

func (w *Worker) poll(ctx *sim.Context) {
	if w.stopped {
		return
	}
	w.Queue.Dequeue(ctx, func(ctx *sim.Context, id string, _ int64, ok bool) {
		if !ok {
			ctx.After(w.PollInterval, func(ctx *sim.Context) { w.poll(ctx) })
			return
		}
		// Crossing queue→KV: the queue's fence is a no-op, so libRSS
		// would add nothing here; the KV read must still observe the
		// photo (I2) because the enqueue causally followed the commit.
		w.KV.ReadOnly(ctx, []string{PhotoKey(id)}, func(ctx *sim.Context, r spanner.ROResult) {
			w.Processed++
			if r.Vals[PhotoKey(id)] == "" {
				w.V.I2++
			}
			w.poll(ctx)
		})
	})
}
