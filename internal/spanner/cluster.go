package spanner

import (
	"hash/fnv"
	"math/rand"

	"rsskv/internal/replication"
	"rsskv/internal/sim"
	"rsskv/internal/truetime"
)

// Cluster is an assembled Spanner deployment: shard leaders, their
// replication acceptors, and the latency knowledge clients use to pick
// coordinators and estimate t_ee.
type Cluster struct {
	cfg    Config
	world  *sim.World
	net    *sim.Network
	Shards []*Shard
	leader []sim.NodeID

	replLat      []sim.Time // per-shard majority replication latency
	maxCommitLag sim.Time
	nextClientID uint32
}

// NewCluster builds the configured shards in w. Each shard gets a leader
// node in its configured region and one acceptor node per replica region.
func NewCluster(w *sim.World, net *sim.Network, cfg Config) *Cluster {
	if cfg.NumShards == 0 {
		cfg.NumShards = len(cfg.LeaderRegions)
	}
	if cfg.NumShards == 0 {
		panic("spanner: no shards configured")
	}
	cl := &Cluster{cfg: cfg, world: w, net: net}
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < cfg.NumShards; i++ {
		leaderRegion := cfg.LeaderRegions[i%len(cfg.LeaderRegions)]
		clock := truetime.NewClock(cfg.Epsilon, rng)
		sh := NewShard(i, &cl.cfg, clock)
		leaderNode := w.AddNode(sh, leaderRegion)
		var acceptors []sim.NodeID
		var replicaRegions []sim.RegionID
		if len(cfg.ReplicaRegions) > 0 {
			replicaRegions = cfg.ReplicaRegions[i%len(cfg.ReplicaRegions)]
		}
		for _, reg := range replicaRegions {
			acc := replication.NewAcceptor(i)
			acc.ProcTime = cfg.ProcTime
			acceptors = append(acceptors, w.AddNode(acc, reg))
		}
		sh.SetReplication(replication.NewLeader(i, acceptors))
		cl.Shards = append(cl.Shards, sh)
		cl.leader = append(cl.leader, leaderNode)
		cl.replLat = append(cl.replLat, cl.majorityLatency(leaderRegion, replicaRegions))
	}
	cl.maxCommitLag = cfg.MaxCommitLag
	if cl.maxCommitLag == 0 {
		cl.maxCommitLag = cl.deriveMaxCommitLag()
	}
	if cl.cfg.POStaleness == 0 {
		cl.cfg.POStaleness = 2 * cl.maxCommitLag
	}
	return cl
}

// POStaleness returns the PO ablation's assumed replication lag.
func (c *Cluster) POStaleness() sim.Time { return c.cfg.POStaleness }

// majorityLatency is the round-trip time to gather a majority: with the
// leader counting itself, it is the RTT to the (quorum-1)-th nearest
// acceptor.
func (c *Cluster) majorityLatency(leader sim.RegionID, acceptors []sim.RegionID) sim.Time {
	if len(acceptors) == 0 {
		return 0
	}
	need := (len(acceptors)+1)/2 + 1 - 1 // acks needed beyond the leader
	rtts := make([]sim.Time, 0, len(acceptors))
	for _, a := range acceptors {
		rtts = append(rtts, c.net.RTT(leader, a))
	}
	// Sort ascending (tiny slice).
	for i := 1; i < len(rtts); i++ {
		for j := i; j > 0 && rtts[j] < rtts[j-1]; j-- {
			rtts[j], rtts[j-1] = rtts[j-1], rtts[j]
		}
	}
	if need <= 0 {
		return 0
	}
	return rtts[need-1]
}

// deriveMaxCommitLag bounds L of §5.1: the worst-case gap between a
// transaction's t_ee estimate and its commit timestamp. Commit timestamps
// are chosen during 2PC, so the bound is the worst commit latency (prepare
// replication + vote + commit replication) plus twice the TrueTime
// uncertainty.
func (c *Cluster) deriveMaxCommitLag() sim.Time {
	var worst sim.Time
	for i := range c.Shards {
		for j := range c.Shards {
			lat := c.replLat[i] + c.net.RTT(c.leaderRegion(i), c.leaderRegion(j)) + c.replLat[j]
			if lat > worst {
				worst = lat
			}
		}
	}
	return worst + 2*c.cfg.Epsilon + sim.Ms(10)
}

func (c *Cluster) leaderRegion(shard int) sim.RegionID {
	return c.world.Region(c.leader[shard])
}

// MaxCommitLag returns L (§5.1), used by real-time fences.
func (c *Cluster) MaxCommitLag() sim.Time { return c.maxCommitLag }

// ShardOf maps a key to its shard.
func (c *Cluster) ShardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(c.Shards)))
}

// LeaderNode returns the node ID of a shard's leader.
func (c *Cluster) LeaderNode(shard int) sim.NodeID { return c.leader[shard] }

// Mode returns the cluster's configured consistency mode.
func (c *Cluster) Mode() Mode { return c.cfg.Mode }

// BestCoordinator picks the participant shard minimizing the estimated
// commit latency from the client's region, and returns that estimate (§6:
// clients use measured minimum RTTs to choose coordinators and compute
// t_ee).
func (c *Cluster) BestCoordinator(client sim.RegionID, shards []int) (int, sim.Time) {
	best, bestLat := shards[0], sim.Time(1<<62)
	for _, coord := range shards {
		lat := c.CommitLatencyEstimate(client, shards, coord)
		if lat < bestLat {
			best, bestLat = coord, lat
		}
	}
	return best, bestLat
}

// CommitLatencyEstimate models the 2PC critical path: client→participant
// writes, participant prepare replication, participant→coordinator votes,
// coordinator commit replication, coordinator→client reply.
func (c *Cluster) CommitLatencyEstimate(client sim.RegionID, shards []int, coord int) sim.Time {
	var phase1 sim.Time
	for _, sh := range shards {
		lat := c.net.OneWay(client, c.leaderRegion(sh)) +
			c.replLat[sh] +
			c.net.OneWay(c.leaderRegion(sh), c.leaderRegion(coord))
		if lat > phase1 {
			phase1 = lat
		}
	}
	return phase1 + c.replLat[coord] + c.net.OneWay(c.leaderRegion(coord), client)
}

// NewClient builds a client homed in region, with a TrueTime clock drawn
// from the cluster's uncertainty bound. In ModePO the client also draws
// its replica lag (uniform in [POStaleness/4, POStaleness]).
func (c *Cluster) NewClient(region sim.RegionID, rng *rand.Rand) *Client {
	c.nextClientID++
	cl := newClient(c.nextClientID, c, region, truetime.NewClock(c.cfg.Epsilon, rng))
	if c.cfg.Mode == ModePO {
		lo := int64(c.cfg.POStaleness) / 4
		cl.poLag = sim.Time(lo + rng.Int63n(3*lo+1))
	}
	return cl
}

// SyncClient wraps a Client in its own node with blocking calls, the
// linear-code façade used by examples and tests.
type SyncClient struct {
	C      *Client
	NodeID sim.NodeID
	world  *sim.World
}

// NewSyncClient adds a node hosting client cl to the world.
func NewSyncClient(w *sim.World, region sim.RegionID, cl *Client) *SyncClient {
	s := &SyncClient{C: cl, world: w}
	s.NodeID = w.AddNode(s, region)
	return s
}

// Recv implements sim.Handler.
func (s *SyncClient) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	s.C.Recv(ctx, from, msg)
}

const syncLimit = 3600 * sim.Second

// ReadWrite performs a blocking read-write transaction.
func (s *SyncClient) ReadWrite(readKeys []string, writes []KV) RWResult {
	var res RWResult
	done := false
	s.C.ReadWrite(s.world.NodeContext(s.NodeID), readKeys, writes, func(_ *sim.Context, r RWResult) {
		res = r
		done = true
	})
	if !s.world.RunUntil(func() bool { return done }, s.world.Now()+syncLimit) {
		panic("spanner: read-write transaction did not complete")
	}
	return res
}

// ReadOnly performs a blocking read-only transaction.
func (s *SyncClient) ReadOnly(keys []string) ROResult {
	var res ROResult
	done := false
	s.C.ReadOnly(s.world.NodeContext(s.NodeID), keys, func(_ *sim.Context, r ROResult) {
		res = r
		done = true
	})
	if !s.world.RunUntil(func() bool { return done }, s.world.Now()+syncLimit) {
		panic("spanner: read-only transaction did not complete")
	}
	return res
}

// Fence performs a blocking real-time fence.
func (s *SyncClient) Fence() {
	done := false
	s.C.Fence(s.world.NodeContext(s.NodeID), func(*sim.Context) { done = true })
	if !s.world.RunUntil(func() bool { return done }, s.world.Now()+syncLimit) {
		panic("spanner: fence did not complete")
	}
}
