// Package spanner implements the Spanner transactional key-value store
// (Corbett et al. [22]) and the paper's Spanner-RSS variant (§5–§6).
//
// Spanner shards a multi-versioned key space across replication groups.
// Read-write (RW) transactions use strict two-phase locking with wound-wait
// and a TrueTime-timestamped two-phase commit; commit wait guarantees every
// commit timestamp lies between the transaction's real start and end times,
// which yields strict serializability. Read-only (RO) transactions read a
// snapshot at t_read = TT.now().latest in one round, but must block when a
// conflicting transaction is prepared with t_p ≤ t_read.
//
// Spanner-RSS (Algorithms 1–2 of the paper) relaxes RO transactions to
// regular sequential serializability: a shard may skip a prepared
// transaction unless a causal constraint requires observing it
// (t_p ≤ t_min) or it could have finished before the RO began
// (t_ee ≤ t_read). Clients verify the returned values form a consistent
// snapshot at t_snap and only wait for the commit outcomes that could
// invalidate it. Both optimizations from §6 are implemented: skipped
// writes returned in the fast path, and t_ee advancement when transactions
// block in wound-wait.
package spanner

import (
	"fmt"

	"rsskv/internal/locks"
	"rsskv/internal/sim"
	"rsskv/internal/truetime"
)

// TxnID identifies a transaction; it is shared with the lock manager.
type TxnID = locks.TxnID

// Mode selects the RO transaction protocol.
type Mode int

const (
	// ModeStrict is baseline Spanner: strictly serializable RO
	// transactions that block on conflicting prepared transactions.
	ModeStrict Mode = iota
	// ModeRSS is Spanner-RSS: RO transactions skip prepared transactions
	// when RSS allows, per Algorithms 1–2.
	ModeRSS
	// ModePO is an ablation providing only process-ordered
	// serializability: RO transactions read at the client's own t_min
	// rather than TT.now().latest, never blocking but possibly returning
	// stale snapshots that violate real-time (and cross-service causal)
	// constraints. It demonstrates the invariant violations of §2.5.
	ModePO
)

func (m Mode) String() string {
	switch m {
	case ModeStrict:
		return "spanner"
	case ModeRSS:
		return "spanner-rss"
	case ModePO:
		return "spanner-po"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// KV is a key-value pair in a transaction's write set.
type KV struct {
	Key   string
	Value string
}

// VersionedKV is a value with its commit timestamp.
type VersionedKV struct {
	Key   string
	Value string
	TC    truetime.Timestamp
}

// Config parameterizes a Spanner cluster.
type Config struct {
	// Mode selects baseline Spanner, Spanner-RSS, or the PO ablation.
	Mode Mode
	// NumShards is the number of shards (replication groups).
	NumShards int
	// LeaderRegions[i] places shard i's leader; replicas are placed in
	// the remaining regions per ReplicaRegions.
	LeaderRegions []sim.RegionID
	// ReplicaRegions[i] lists the acceptor regions for shard i (the
	// paper: "the replicas are in the other two data centers").
	ReplicaRegions [][]sim.RegionID
	// Epsilon is the emulated TrueTime uncertainty (10 ms in §6.1, 0 in
	// §6.2).
	Epsilon sim.Time
	// ProcTime is the per-message CPU cost at shard leaders and
	// acceptors, for the saturation experiments.
	ProcTime sim.Time
	// PrepareDeadlock is how long a prepare may wait for write locks
	// before the shard votes abort, breaking the rare cross-shard
	// prepared-prepared deadlock that wound-wait cannot (prepared holders
	// are wound-immune). Default 1s.
	PrepareDeadlock sim.Time
	// MaxCommitLag is L from §5.1: an upper bound on t_c - t_ee across
	// all RW transactions, used by real-time fences. The default derives
	// from the topology: the maximum commit latency estimate plus the
	// TrueTime uncertainty.
	MaxCommitLag sim.Time
	// POStaleness is the replication lag the ModePO ablation assumes:
	// its read-only transactions read a consistent snapshot this far
	// behind real time, modeling lazy replication [24]. Defaults to
	// twice MaxCommitLag.
	POStaleness sim.Time
	// DisableOpt1 turns off §6's first optimization: returning a skipped
	// prepared transaction's buffered writes in the RO fast path. With
	// it off, clients always need the slow reply's values. Ablation only.
	DisableOpt1 bool
	// DisableOpt2 turns off §6's second optimization: advancing t_ee by
	// the time a transaction blocked in wound-wait. With it off, lock
	// contention makes t_ee estimates stale and forces more RO blocking.
	// Ablation only.
	DisableOpt2 bool
	// GCInterval, if positive, makes each shard periodically drop
	// versions older than now − GCWindow, bounding memory in long runs.
	GCInterval sim.Time
	// GCWindow is how much history GC retains (default 10 s).
	GCWindow sim.Time
}

func (c *Config) prepareDeadlock() sim.Time {
	if c.PrepareDeadlock > 0 {
		return c.PrepareDeadlock
	}
	return sim.Second
}
