package spanner

import (
	"math/rand"
	"testing"

	"rsskv/internal/sim"
)

// TestDisableOpt2MakesTEEStale verifies §6 optimization 2's effect: with
// the adjustment off, a transaction that blocked in wound-wait keeps its
// original (now stale) t_ee, so subsequent RO transactions see
// t_ee ≤ t_read and must block.
func TestDisableOpt2MakesTEEStale(t *testing.T) {
	build := func(disable bool) (prepTee, prepTp int64) {
		net := sim.Topology3DC()
		w := sim.NewWorld(net, 21)
		cl := NewCluster(w, net, Config{
			Mode:          ModeRSS,
			NumShards:     3,
			LeaderRegions: []sim.RegionID{0, 1, 2},
			ReplicaRegions: [][]sim.RegionID{
				{1, 2}, {0, 2}, {0, 1},
			},
			Epsilon:     sim.Ms(10),
			DisableOpt2: disable,
		})
		k := keyOn(cl, 0, "hot")
		k2 := keyOn(cl, 1, "other")
		// An older holder: prepared on k, blocking the victim's prepare.
		older := &prepareHolder{c: cl.NewClient(0, rand.New(rand.NewSource(1))), writes: []KV{{k, "a"}, {k2, "a2"}}}
		w.AddNode(older, 0)
		// A younger transaction that will block behind the prepared one.
		younger := &prepareHolder{c: cl.NewClient(0, rand.New(rand.NewSource(2))), writes: []KV{{k, "b"}, {k2, "b2"}}}
		youngNode := &delayedInit{h: younger, delay: sim.Ms(40)}
		w.AddNode(youngNode, 0)
		// Run until the younger client's prepare is recorded, capturing
		// the entry before the transaction commits and clears it.
		var captured *prepTxn
		ok := w.RunUntil(func() bool {
			for id, p := range cl.Shards[0].prepared {
				if id.Client == younger.c.ID {
					captured = p
					return true
				}
			}
			return false
		}, 60*sim.Second)
		if !ok {
			t.Fatal("younger transaction never prepared")
		}
		return int64(captured.tee), int64(captured.tp)
	}
	teeOn, _ := build(false)
	teeOff, _ := build(true)
	if teeOn <= teeOff {
		t.Errorf("opt2 on: tee %d, off: %d — adjustment should advance t_ee", teeOn, teeOff)
	}
}

// delayedInit wraps a handler, delaying its Init.
type delayedInit struct {
	h interface {
		sim.Handler
		Init(*sim.Context)
	}
	delay sim.Time
}

func (d *delayedInit) Init(ctx *sim.Context) {
	ctx.After(d.delay, func(ctx *sim.Context) { d.h.Init(ctx) })
}

func (d *delayedInit) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	d.h.Recv(ctx, from, msg)
}

func TestGCDropsOldVersions(t *testing.T) {
	net := sim.Topology3DC()
	w := sim.NewWorld(net, 22)
	cl := NewCluster(w, net, Config{
		Mode:          ModeStrict,
		NumShards:     3,
		LeaderRegions: []sim.RegionID{0, 1, 2},
		ReplicaRegions: [][]sim.RegionID{
			{1, 2}, {0, 2}, {0, 1},
		},
		Epsilon:    0,
		GCInterval: sim.Second,
		GCWindow:   2 * sim.Second,
	})
	c := NewSyncClient(w, 0, cl.NewClient(0, rand.New(rand.NewSource(1))))
	k := keyOn(cl, 0, "x")
	for i := 0; i < 8; i++ {
		c.ReadWrite(nil, []KV{{k, string(rune('a' + i))}})
		w.Run(w.Now() + sim.Second)
	}
	sh := cl.Shards[0]
	if got := sh.Store().Versions(k); got >= 8 {
		t.Errorf("GC kept %d versions, want < 8", got)
	}
	if v := sh.Store().Latest(k); v.Value != "h" {
		t.Errorf("latest = %q after GC, want h", v.Value)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		h := runSpannerWorkload(t, ModeRSS, 77, 4, 8)
		out := ""
		for _, op := range h.Ops {
			out += op.Type.String() + ":" + op.Invoke.String() + ":" + op.Respond.String() + ";"
		}
		return out
	}
	if run() != run() {
		t.Error("identical seeds produced different histories")
	}
}
