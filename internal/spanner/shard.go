package spanner

import (
	"fmt"

	"rsskv/internal/locks"
	"rsskv/internal/mvstore"
	"rsskv/internal/replication"
	"rsskv/internal/sim"
	"rsskv/internal/truetime"
)

// prepTxn is one entry of Algorithm 2's prepared set P.
type prepTxn struct {
	txn    TxnID
	tp     truetime.Timestamp
	tee    truetime.Timestamp
	writes []KV
}

// shardTxn tracks an executing or preparing RW transaction at this shard.
type shardTxn struct {
	txn       TxnID
	client    sim.NodeID
	prio      int64
	aborted   bool
	pendReads []ReadReq
	// Prepare state.
	preparing   bool
	prep        PrepareReq
	lockWaits   int
	blockStart  sim.Time
	deadlockTmr *sim.Timer
}

// coordTxn tracks two-phase commit at the coordinator.
type coordTxn struct {
	txn        TxnID
	votes      int
	needed     int
	failed     bool
	maxTP      truetime.Timestamp
	maxTEE     truetime.Timestamp
	clientNode sim.NodeID
	parts      []sim.NodeID // other participants' leader nodes
	decided    bool
}

// roBlocked is a read-only transaction waiting on the blocking set B
// (Algorithm 2 line 7).
type roBlocked struct {
	client sim.NodeID
	m      ROCommit
	await  map[TxnID]bool // remaining members of B
	pset   map[TxnID]bool // the conflicting prepared set P at arrival
}

// watcher subscribes one RO client to a skipped transaction's outcome.
type watcher struct {
	client sim.NodeID
	reqID  uint64
	keys   map[string]bool
}

// Shard is one shard's leader: lock table, multi-version store, prepared
// set, replication group leader, and the RO protocol of the configured
// mode. It is a single sim node; acceptors are separate nodes.
type Shard struct {
	Index int
	cfg   *Config
	clock *truetime.Clock
	store *mvstore.Store
	lm    *locks.Manager
	repl  *replication.Leader

	maxTS    truetime.Timestamp // floor for prepare/commit timestamps ("safe time")
	txns     map[TxnID]*shardTxn
	prepared map[TxnID]*prepTxn
	coord    map[TxnID]*coordTxn
	blocked  []*roBlocked
	watchers map[TxnID][]watcher
	dead     map[TxnID]bool // wounded txns awaiting the client's release
	// earlyVotes buffers PrepareVotes that outran the client's PrepareReq
	// to this coordinator (a nearby participant can validate and vote NO
	// before the coordinator learns it is the coordinator). Every
	// participant votes exactly once and the coordinator decides only on
	// the full count, so entries are always drained by the PrepareReq.
	earlyVotes map[TxnID][]PrepareVote

	ctx *sim.Context // valid during Recv (lock-manager callbacks)

	// Stats.
	ROFast    int64 // RO rounds answered without blocking
	ROBlocked int64 // RO rounds that blocked on B
	ROSkips   int64 // prepared transactions skipped (RSS)
	Wounds    int64
	Aborts    int64
}

// NewShard builds shard index. The replication leader must be attached via
// SetReplication before the world runs.
func NewShard(index int, cfg *Config, clock *truetime.Clock) *Shard {
	s := &Shard{
		Index:      index,
		cfg:        cfg,
		clock:      clock,
		store:      mvstore.New(),
		lm:         locks.NewManager(),
		txns:       make(map[TxnID]*shardTxn),
		prepared:   make(map[TxnID]*prepTxn),
		coord:      make(map[TxnID]*coordTxn),
		watchers:   make(map[TxnID][]watcher),
		dead:       make(map[TxnID]bool),
		earlyVotes: make(map[TxnID][]PrepareVote),
	}
	s.lm.OnGrant = s.onLockGrant
	s.lm.OnWound = s.onWound
	return s
}

// SetReplication attaches the shard's replication group.
func (s *Shard) SetReplication(l *replication.Leader) { s.repl = l }

// Init implements sim.Initer: it arms the version-GC timer when enabled.
func (s *Shard) Init(ctx *sim.Context) {
	if s.cfg.GCInterval <= 0 {
		return
	}
	window := s.cfg.GCWindow
	if window <= 0 {
		window = 10 * sim.Second
	}
	var tick func(*sim.Context)
	tick = func(ctx *sim.Context) {
		floor := s.clock.Now(ctx.Now()).Earliest - truetime.Timestamp(window)
		if floor > 0 {
			s.store.GC(floor)
		}
		ctx.After(s.cfg.GCInterval, tick)
	}
	ctx.After(s.cfg.GCInterval, tick)
}

// Store exposes the shard's version store (testing).
func (s *Shard) Store() *mvstore.Store { return s.store }

func (s *Shard) now() sim.Time { return s.ctx.Now() }

// tt returns the current TrueTime interval at this shard.
func (s *Shard) tt() truetime.Interval { return s.clock.Now(s.now()) }

// Recv implements sim.Handler.
func (s *Shard) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	s.ctx = ctx
	if s.cfg.ProcTime > 0 {
		ctx.Busy(s.cfg.ProcTime)
	}
	if s.repl != nil && s.repl.OnAck(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case ReadReq:
		s.onRead(from, m)
	case PrepareReq:
		s.onPrepare(from, m)
	case PrepareVote:
		s.onVote(m)
	case CommitDecision:
		s.onDecision(m)
	case ReleaseReq:
		s.abortLocal(m.Txn)
	case ROCommit:
		s.onROCommit(from, m)
	default:
		panic(fmt.Sprintf("spanner: shard got unexpected message %T", msg))
	}
	s.lm.Flush()
}

func (s *Shard) getTxn(txn TxnID, client sim.NodeID, prio int64) *shardTxn {
	t := s.txns[txn]
	if t == nil {
		t = &shardTxn{txn: txn, client: client, prio: prio}
		s.txns[txn] = t
	}
	return t
}

// ---- RW execution reads ----

func (s *Shard) onRead(from sim.NodeID, m ReadReq) {
	if s.dead[m.Txn] {
		s.ctx.Send(from, ReadReply{ReqID: m.ReqID, Key: m.Key, OK: false})
		return
	}
	t := s.getTxn(m.Txn, from, m.Prio)
	if t.aborted {
		s.ctx.Send(from, ReadReply{ReqID: m.ReqID, Key: m.Key, OK: false})
		return
	}
	out := s.lm.Acquire(locks.Request{Txn: m.Txn, Key: m.Key, Mode: locks.Shared, Prio: m.Prio})
	if out == locks.Granted {
		s.replyRead(t, m)
		return
	}
	t.pendReads = append(t.pendReads, m)
}

func (s *Shard) replyRead(t *shardTxn, m ReadReq) {
	v := s.store.Latest(m.Key)
	s.ctx.Send(t.client, ReadReply{ReqID: m.ReqID, Key: m.Key, Value: v.Value, TC: v.TS, OK: true})
}

// ---- Lock-manager callbacks ----

func (s *Shard) onLockGrant(req locks.Request) {
	t := s.txns[req.Txn]
	if t == nil {
		return
	}
	// Pending execution reads on this key.
	kept := t.pendReads[:0]
	for _, pr := range t.pendReads {
		if pr.Key == req.Key && req.Mode == locks.Shared {
			s.replyRead(t, pr)
		} else {
			kept = append(kept, pr)
		}
	}
	t.pendReads = kept
	// Prepare-phase write-lock acquisition.
	if t.preparing && req.Mode == locks.Exclusive {
		t.lockWaits--
		if t.lockWaits == 0 {
			s.finishPrepare(t)
		}
	}
}

func (s *Shard) onWound(txn TxnID) {
	s.Wounds++
	t := s.txns[txn]
	if t == nil || t.aborted {
		return
	}
	t.aborted = true
	s.dead[txn] = true // tombstone until the client's ReleaseReq
	for _, pr := range t.pendReads {
		s.ctx.Send(t.client, ReadReply{ReqID: pr.ReqID, Key: pr.Key, OK: false})
	}
	t.pendReads = nil
	if t.preparing {
		// Wounded while waiting for write locks: vote abort.
		s.voteAbort(t)
	} else {
		s.ctx.Send(t.client, AbortNotify{Txn: txn})
	}
	s.releaseTxn(txn)
}

func (s *Shard) releaseTxn(txn TxnID) {
	t := s.txns[txn]
	if t != nil && t.deadlockTmr != nil {
		t.deadlockTmr.Stop()
	}
	delete(s.txns, txn)
	s.lm.ReleaseAll(txn)
}

// abortLocal handles a client-initiated release (abort cleanup). It is
// the client's final message for the transaction at this shard, so the
// tombstone can be dropped.
func (s *Shard) abortLocal(txn TxnID) {
	delete(s.dead, txn)
	if t := s.txns[txn]; t != nil {
		t.aborted = true
	}
	if _, isPrepared := s.prepared[txn]; isPrepared {
		// Prepared state resolves only through the coordinator decision.
		return
	}
	s.releaseTxn(txn)
}

// ---- Two-phase commit ----

func (s *Shard) onPrepare(from sim.NodeID, m PrepareReq) {
	t := s.getTxn(m.Txn, m.ClientNode, m.Prio)
	t.client = m.ClientNode
	t.prep = m
	t.preparing = true
	if m.IsCoord {
		c := &coordTxn{
			txn:        m.Txn,
			needed:     m.NumParts,
			clientNode: m.ClientNode,
			parts:      m.Participants,
		}
		s.coord[m.Txn] = c
		for _, v := range s.earlyVotes[m.Txn] {
			s.applyVote(c, v)
		}
		delete(s.earlyVotes, m.Txn)
	}
	// Validate read locks (§5: "ensures the transaction still holds its
	// read locks"). A transaction wounded here earlier no longer holds
	// them (and pure writers are caught by the tombstone).
	if t.aborted || s.dead[m.Txn] || !s.lm.HoldsAll(m.Txn, m.ReadKeys) {
		t.aborted = true
		s.voteAbort(t)
		s.releaseTxn(m.Txn)
		return
	}
	// Acquire write locks.
	t.lockWaits = 0
	t.blockStart = s.now()
	waiting := 0
	for _, w := range m.Writes {
		if s.lm.Acquire(locks.Request{Txn: m.Txn, Key: w.Key, Mode: locks.Exclusive, Prio: m.Prio}) == locks.Waiting {
			waiting++
		}
	}
	t.lockWaits = waiting
	if waiting == 0 {
		s.finishPrepare(t)
		return
	}
	// Deadlock breaker: prepared holders are wound-immune, so a
	// prepare-time wait can (rarely) cycle across shards. Time out and
	// vote abort; the client retries.
	txn := m.Txn
	t.deadlockTmr = s.ctx.After(s.cfg.prepareDeadlock(), func(ctx *sim.Context) {
		s.ctx = ctx
		tt := s.txns[txn]
		if tt == nil || !tt.preparing || tt.lockWaits == 0 || tt.aborted {
			return
		}
		tt.aborted = true
		s.voteAbort(tt)
		s.releaseTxn(txn)
		s.lm.Flush()
	})
}

// finishPrepare runs once all write locks are held: choose t_p, log the
// prepare, and vote.
func (s *Shard) finishPrepare(t *shardTxn) {
	t.preparing = false
	if t.deadlockTmr != nil {
		t.deadlockTmr.Stop()
		t.deadlockTmr = nil
	}
	m := t.prep
	// §6 optimization 2: advance t_ee by the time spent blocked on locks.
	tee := m.TEE
	if !s.cfg.DisableOpt2 {
		tee += truetime.Timestamp(s.now() - t.blockStart)
	}
	tp := s.nextTS()
	if len(m.Writes) > 0 {
		s.prepared[m.Txn] = &prepTxn{txn: m.Txn, tp: tp, tee: tee, writes: m.Writes}
	}
	s.lm.SetPrepared(m.Txn)
	txn := m.Txn
	s.repl.Replicate(s.ctx, "prepare", func(ctx *sim.Context) {
		s.ctx = ctx
		s.sendVote(txn, PrepareVote{Txn: txn, OK: true, TP: tp, TEE: tee})
		s.lm.Flush()
	})
}

func (s *Shard) voteAbort(t *shardTxn) {
	s.sendVote(t.txn, PrepareVote{Txn: t.txn, OK: false})
}

// sendVote routes a vote to the coordinator — possibly this shard.
func (s *Shard) sendVote(txn TxnID, v PrepareVote) {
	t := s.txns[txn]
	if t == nil {
		return
	}
	if t.prep.IsCoord {
		if c := s.coord[txn]; c != nil {
			s.applyVote(c, v)
		}
		return
	}
	s.ctx.Send(t.prep.Coord, v)
}

func (s *Shard) onVote(v PrepareVote) {
	c := s.coord[v.Txn]
	if c == nil {
		// The vote outran the client's PrepareReq; hold it until the
		// coordinator role arrives.
		s.earlyVotes[v.Txn] = append(s.earlyVotes[v.Txn], v)
		return
	}
	if c.decided {
		return
	}
	s.applyVote(c, v)
}

func (s *Shard) applyVote(c *coordTxn, v PrepareVote) {
	if c.decided {
		return
	}
	c.votes++
	if !v.OK {
		c.failed = true
	}
	if v.TP > c.maxTP {
		c.maxTP = v.TP
	}
	if v.TEE > c.maxTEE {
		c.maxTEE = v.TEE
	}
	if c.votes < c.needed {
		return
	}
	c.decided = true
	if c.failed {
		s.decide(c, CommitDecision{Txn: c.txn, Committed: false})
		return
	}
	// Choose t_c ≥ all prepare timestamps, > TT.now().latest, > all
	// previously assigned timestamps at this shard.
	tc := s.nextTS()
	if c.maxTP > tc {
		tc = c.maxTP
		if tc > s.maxTS {
			s.maxTS = tc
		}
	}
	dec := CommitDecision{Txn: c.txn, Committed: true, TC: tc}
	s.repl.Replicate(s.ctx, "commit", func(ctx *sim.Context) {
		s.ctx = ctx
		// Commit wait: the decision becomes visible only once t_c is
		// guaranteed past (§5, [22]).
		wait := s.clock.UntilAfter(ctx.Now(), tc)
		if wait == 0 {
			s.decide(c, dec)
			s.lm.Flush()
			return
		}
		ctx.After(wait, func(ctx *sim.Context) {
			s.ctx = ctx
			s.decide(c, dec)
			s.lm.Flush()
		})
	})
}

// decide finalizes the outcome at the coordinator: notify the client and
// participants and apply locally.
func (s *Shard) decide(c *coordTxn, dec CommitDecision) {
	s.ctx.Send(c.clientNode, CommitReply{Txn: c.txn, Committed: dec.Committed, TC: dec.TC, TEE: c.maxTEE})
	for _, p := range c.parts {
		s.ctx.Send(p, dec)
	}
	delete(s.coord, c.txn)
	s.applyDecision(dec)
}

func (s *Shard) onDecision(m CommitDecision) {
	s.applyDecision(m)
}

// applyDecision installs a commit (or discards an abort) for a prepared
// transaction, releases its locks, and resolves any waiting RO work.
func (s *Shard) applyDecision(m CommitDecision) {
	p := s.prepared[m.Txn]
	t := s.txns[m.Txn]
	if m.Committed {
		if p != nil {
			for _, w := range p.writes {
				s.store.Write(w.Key, w.Value, m.TC)
			}
			if m.TC > s.maxTS {
				s.maxTS = m.TC
			}
			// Participants log the commit record asynchronously; the
			// latency-critical path is the coordinator's.
			s.repl.Replicate(s.ctx, "commit-apply", func(*sim.Context) {})
		}
	} else {
		s.Aborts++
	}
	delete(s.prepared, m.Txn)
	if t != nil {
		s.releaseTxn(m.Txn)
	} else {
		s.lm.ReleaseAll(m.Txn)
	}
	s.resolvePrepared(m.Txn, m.Committed, m.TC, p)
}

// nextTS returns a fresh timestamp greater than every timestamp this shard
// has assigned or promised (prepare timestamps, commit timestamps, and RO
// read timestamps), and at least TT.now().latest.
func (s *Shard) nextTS() truetime.Timestamp {
	ts := s.tt().Latest
	if ts <= s.maxTS {
		ts = s.maxTS + 1
	}
	s.maxTS = ts
	return ts
}

// ---- Read-only transactions (Algorithm 2) ----

func (s *Shard) onROCommit(from sim.NodeID, m ROCommit) {
	// Leader-lease safe time: promise no future write below t_read
	// (Algorithm 2 line 4; immediate at leaders, §5).
	if m.TRead > s.maxTS {
		s.maxTS = m.TRead
	}
	keys := make(map[string]bool, len(m.Keys))
	for _, k := range m.Keys {
		keys[k] = true
	}
	// P: conflicting prepared transactions with t_p ≤ t_read (line 5).
	pset := make(map[TxnID]bool)
	await := make(map[TxnID]bool)
	for id, p := range s.prepared {
		if p.tp > m.TRead || !conflictsKeys(p.writes, keys) {
			continue
		}
		pset[id] = true
		// B (line 6): required by causality (t_p ≤ t_min) or possibly
		// finished before the RO began (t_ee ≤ t_read). Baseline
		// Spanner blocks on all of P.
		if s.cfg.Mode != ModeRSS || p.tp <= m.TMin || p.tee <= m.TRead {
			await[id] = true
		}
	}
	ro := &roBlocked{client: from, m: m, await: await, pset: pset}
	if len(await) == 0 {
		s.roFastReply(ro)
		return
	}
	s.ROBlocked++
	s.blocked = append(s.blocked, ro)
}

func conflictsKeys(writes []KV, keys map[string]bool) bool {
	for _, w := range writes {
		if keys[w.Key] {
			return true
		}
	}
	return false
}

// roFastReply is Algorithm 2 lines 8–10.
func (s *Shard) roFastReply(ro *roBlocked) {
	s.ROFast++
	m := ro.m
	vals := make([]VersionedKV, 0, len(m.Keys))
	for _, k := range m.Keys {
		v := s.store.ReadAt(k, m.TRead)
		vals = append(vals, VersionedKV{Key: k, Value: v.Value, TC: v.TS})
	}
	var skipped []SkippedPrep
	keys := make(map[string]bool, len(m.Keys))
	for _, k := range m.Keys {
		keys[k] = true
	}
	for id := range ro.pset {
		p := s.prepared[id]
		if p == nil {
			continue // resolved while we waited for B
		}
		if ro.await[id] {
			continue // was in B, must have resolved; guarded above
		}
		s.ROSkips++
		sp := SkippedPrep{Txn: id, TP: p.tp}
		if !s.cfg.DisableOpt1 {
			// §6 optimization 1: ship the buffered writes now so the
			// client can finish as soon as it learns the commit
			// timestamp from any shard.
			for _, w := range p.writes {
				if keys[w.Key] {
					sp.Writes = append(sp.Writes, w)
				}
			}
		}
		skipped = append(skipped, sp)
		s.watchers[id] = append(s.watchers[id], watcher{client: ro.client, reqID: m.ReqID, keys: keys})
	}
	s.ctx.Send(ro.client, ROFastReply{ReqID: m.ReqID, Vals: vals, Skipped: skipped})
}

// resolvePrepared wakes blocked ROs and notifies slow-reply watchers when a
// prepared transaction commits or aborts (Algorithm 2 lines 7 and 11–18).
func (s *Shard) resolvePrepared(txn TxnID, committed bool, tc truetime.Timestamp, p *prepTxn) {
	// Slow replies.
	for _, w := range s.watchers[txn] {
		reply := ROSlowReply{ReqID: w.reqID, Txn: txn, Committed: committed, TC: tc}
		if committed && p != nil {
			for _, kv := range p.writes {
				if w.keys[kv.Key] {
					reply.Vals = append(reply.Vals, VersionedKV{Key: kv.Key, Value: kv.Value, TC: tc})
				}
			}
		}
		s.ctx.Send(w.client, reply)
	}
	delete(s.watchers, txn)
	// Unblock ROs waiting on B.
	kept := s.blocked[:0]
	for _, ro := range s.blocked {
		if ro.await[txn] {
			delete(ro.await, txn)
		}
		if len(ro.await) == 0 {
			s.roFastReply(ro)
		} else {
			kept = append(kept, ro)
		}
	}
	s.blocked = kept
}
