package spanner

import (
	"fmt"
	"math/rand"
	"testing"

	"rsskv/internal/sim"
	"rsskv/internal/truetime"
)

// test3DC builds the paper's §6.1 topology: three shards, leaders in CA,
// VA, IR, replicas in the other two regions.
func test3DC(mode Mode, eps sim.Time, seed int64) (*sim.World, *Cluster) {
	net := sim.Topology3DC()
	w := sim.NewWorld(net, seed)
	cl := NewCluster(w, net, Config{
		Mode:          mode,
		NumShards:     3,
		LeaderRegions: []sim.RegionID{0, 1, 2},
		ReplicaRegions: [][]sim.RegionID{
			{1, 2}, {0, 2}, {0, 1},
		},
		Epsilon: eps,
	})
	return w, cl
}

// keyOn finds a key that maps to the given shard.
func keyOn(cl *Cluster, shard int, salt string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s-%d", salt, i)
		if cl.ShardOf(k) == shard {
			return k
		}
	}
}

func TestRWThenRO(t *testing.T) {
	for _, mode := range []Mode{ModeStrict, ModeRSS} {
		t.Run(mode.String(), func(t *testing.T) {
			w, cl := test3DC(mode, 0, 1)
			c := NewSyncClient(w, 0, cl.NewClient(0, rand.New(rand.NewSource(1))))
			k0, k1 := keyOn(cl, 0, "a"), keyOn(cl, 1, "b")
			res := c.ReadWrite(nil, []KV{{k0, "v0"}, {k1, "v1"}})
			if res.TC == 0 {
				t.Fatal("commit timestamp is zero")
			}
			ro := c.ReadOnly([]string{k0, k1})
			if ro.Vals[k0] != "v0" || ro.Vals[k1] != "v1" {
				t.Errorf("RO read %v, want v0/v1", ro.Vals)
			}
		})
	}
}

func TestRWReadsLatestCommitted(t *testing.T) {
	w, cl := test3DC(ModeStrict, 0, 2)
	c := NewSyncClient(w, 0, cl.NewClient(0, rand.New(rand.NewSource(1))))
	k := keyOn(cl, 0, "x")
	c.ReadWrite(nil, []KV{{k, "first"}})
	res := c.ReadWrite([]string{k}, []KV{{k, "second"}})
	if res.Reads[k] != "first" {
		t.Errorf("RW read %q, want first", res.Reads[k])
	}
	ro := c.ReadOnly([]string{k})
	if ro.Vals[k] != "second" {
		t.Errorf("RO read %q, want second", ro.Vals[k])
	}
}

func TestCommitTimestampWithinBounds(t *testing.T) {
	// With ε=10ms, commit wait must place t_c strictly before the
	// client-observed end of the transaction, and after its start.
	w, cl := test3DC(ModeStrict, sim.Ms(10), 3)
	rng := rand.New(rand.NewSource(2))
	c := NewSyncClient(w, 0, cl.NewClient(0, rng))
	k := keyOn(cl, 0, "x")
	start := w.Now()
	res := c.ReadWrite(nil, []KV{{k, "v"}})
	end := w.Now()
	if res.TC <= truetime.Timestamp(start) {
		t.Errorf("t_c %d not after true start %d", res.TC, start)
	}
	if res.TC >= truetime.Timestamp(end) {
		t.Errorf("t_c %d not before true end %d (commit wait broken)", res.TC, end)
	}
}

func TestROLatencySingleRound(t *testing.T) {
	// An uncontended RO from CA touching all three shards takes one round
	// to the farthest leader: CA→IR RTT = 136ms.
	for _, mode := range []Mode{ModeStrict, ModeRSS} {
		t.Run(mode.String(), func(t *testing.T) {
			w, cl := test3DC(mode, 0, 4)
			c := NewSyncClient(w, 0, cl.NewClient(0, rand.New(rand.NewSource(1))))
			keys := []string{keyOn(cl, 0, "a"), keyOn(cl, 1, "b"), keyOn(cl, 2, "c")}
			start := w.Now()
			c.ReadOnly(keys)
			if lat := w.Now() - start; lat != sim.Ms(136) {
				t.Errorf("RO latency = %v, want 136ms", lat)
			}
		})
	}
}

// prepareHolder starts a RW transaction from an async node and reports
// when its writes are prepared at a shard.
type prepareHolder struct {
	c      *Client
	writes []KV
	done   bool
	tc     truetime.Timestamp
}

func (p *prepareHolder) Init(ctx *sim.Context) {
	p.c.ReadWrite(ctx, nil, p.writes, func(_ *sim.Context, r RWResult) {
		p.done = true
		p.tc = r.TC
	})
}

func (p *prepareHolder) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	p.c.Recv(ctx, from, msg)
}

// TestFigure4 reproduces the paper's Figure 4: client CW commits writes to
// two shards; while the transaction is prepared but uncommitted, CR2's RO
// transaction arrives. Spanner blocks it until CW commits; Spanner-RSS
// answers immediately with the old values.
func TestFigure4(t *testing.T) {
	run := func(mode Mode) (roLat sim.Time, vals map[string]string) {
		w, cl := test3DC(mode, sim.Ms(10), 5)
		k0, k1 := keyOn(cl, 0, "f"), keyOn(cl, 1, "g")
		holder := &prepareHolder{
			c:      cl.NewClient(0, rand.New(rand.NewSource(7))),
			writes: []KV{{k0, "new0"}, {k1, "new1"}},
		}
		w.AddNode(holder, 0)
		reader := NewSyncClient(w, 1, cl.NewClient(1, rand.New(rand.NewSource(8))))
		// Run until the writes are prepared at shard 1 (the VA shard).
		ok := w.RunUntil(func() bool {
			for _, p := range cl.Shards[1].prepared {
				_ = p
				return true
			}
			return false
		}, 10*sim.Second)
		if !ok {
			t.Fatal("transaction never prepared")
		}
		start := w.Now()
		ro := reader.ReadOnly([]string{k0, k1})
		roLat = w.Now() - start
		// Let the RW transaction finish.
		w.RunUntil(func() bool { return holder.done }, 10*sim.Second)
		return roLat, ro.Vals
	}

	latStrict, _ := run(ModeStrict)
	latRSS, valsRSS := run(ModeRSS)
	// The reader is in VA; an uncontended RO over shards {CA, VA} costs
	// the VA→CA round (62ms). Spanner must additionally wait out the
	// prepared transaction's commit; Spanner-RSS must not.
	if latRSS != sim.Ms(62) {
		t.Errorf("Spanner-RSS RO latency = %v, want 62ms (no blocking)", latRSS)
	}
	if latStrict <= latRSS {
		t.Errorf("Spanner RO latency = %v, want > %v (blocked on prepared txn)", latStrict, latRSS)
	}
	// RSS returned the old (pre-transaction) values.
	for k, v := range valsRSS {
		if v != "" {
			t.Errorf("RSS RO observed %s=%q, want old value", k, v)
		}
	}
}

// TestRSSCausalConstraintBlocks verifies Algorithm 2 line 6: a client whose
// t_min covers a prepared transaction's t_p must wait for it even in RSS
// mode.
func TestRSSCausalConstraintBlocks(t *testing.T) {
	w, cl := test3DC(ModeRSS, sim.Ms(10), 6)
	k0, k1 := keyOn(cl, 0, "f"), keyOn(cl, 1, "g")
	holder := &prepareHolder{
		c:      cl.NewClient(0, rand.New(rand.NewSource(7))),
		writes: []KV{{k0, "new0"}, {k1, "new1"}},
	}
	w.AddNode(holder, 0)
	reader := NewSyncClient(w, 1, cl.NewClient(1, rand.New(rand.NewSource(8))))
	ok := w.RunUntil(func() bool {
		return len(cl.Shards[1].prepared) > 0
	}, 10*sim.Second)
	if !ok {
		t.Fatal("transaction never prepared")
	}
	// Simulate a causal constraint: the reader's t_min covers the
	// prepared transaction's t_p, so Algorithm 2 line 6 places the
	// transaction in B and the RO must block until it resolves — unlike
	// the unconstrained RO of TestFigure4.
	var tp truetime.Timestamp
	for _, p := range cl.Shards[1].prepared {
		tp = p.tp
	}
	reader.C.SetTMin(tp)
	start := w.Now()
	reader.ReadOnly([]string{k0, k1})
	lat := w.Now() - start
	if lat <= sim.Ms(62) {
		t.Errorf("RO with covering t_min returned in %v; must block for the prepared txn", lat)
	}
	// Once the writer has finished, the session observes the writes.
	if !w.RunUntil(func() bool { return holder.done }, 10*sim.Second) {
		t.Fatal("writer never finished")
	}
	ro := reader.ReadOnly([]string{k0, k1})
	if ro.Vals[k1] != "new1" || ro.Vals[k0] != "new0" {
		t.Errorf("post-commit RO observed %v, want new0/new1", ro.Vals)
	}
}

func TestWoundWaitResolvesContention(t *testing.T) {
	// Two RW transactions contending on one key: both must eventually
	// commit (the younger may be wounded and retried).
	w, cl := test3DC(ModeStrict, 0, 7)
	k := keyOn(cl, 0, "hot")
	h1 := &prepareHolder{c: cl.NewClient(0, rand.New(rand.NewSource(1))), writes: []KV{{k, "a"}}}
	h2 := &prepareHolder{c: cl.NewClient(1, rand.New(rand.NewSource(2))), writes: []KV{{k, "b"}}}
	w.AddNode(h1, 0)
	w.AddNode(h2, 1)
	if !w.RunUntil(func() bool { return h1.done && h2.done }, 60*sim.Second) {
		t.Fatal("contending transactions did not both commit")
	}
	if h1.tc == h2.tc {
		t.Error("conflicting transactions share a commit timestamp")
	}
	// The store holds the later writer's value.
	want := "a"
	if h2.tc > h1.tc {
		want = "b"
	}
	if v := cl.Shards[0].Store().Latest(k); v.Value != want {
		t.Errorf("final value %q, want %q", v.Value, want)
	}
}

func TestRWWithReadsAndContention(t *testing.T) {
	// A read-modify-write pair on a hot key: the sum of two increments
	// must be 2 (no lost updates under 2PL).
	w, cl := test3DC(ModeStrict, 0, 8)
	k := keyOn(cl, 0, "ctr")
	incr := func(id uint32, seed int64) *incrNode {
		n := &incrNode{c: cl.NewClient(sim.RegionID(0), rand.New(rand.NewSource(seed))), key: k}
		w.AddNode(n, sim.RegionID(int(id)%3))
		return n
	}
	n1, n2 := incr(0, 11), incr(1, 12)
	if !w.RunUntil(func() bool { return n1.done && n2.done }, 60*sim.Second) {
		t.Fatal("increments did not finish")
	}
	c := NewSyncClient2(w, cl)
	_ = c
	final := cl.Shards[0].Store().Latest(k).Value
	if final != "xx" {
		t.Errorf("final counter = %q, want xx (two appends)", final)
	}
}

// NewSyncClient2 is a placeholder: nodes cannot be added after the world
// starts, so this test reads the store directly instead.
func NewSyncClient2(w *sim.World, cl *Cluster) *Cluster { return cl }

type incrNode struct {
	c    *Client
	key  string
	done bool
}

func (n *incrNode) Init(ctx *sim.Context) {
	// Append one "x" to the value read, inside one transaction.
	n.c.ReadWriteFunc(ctx, []string{n.key}, func(reads map[string]string) []KV {
		return []KV{{n.key, reads[n.key] + "x"}}
	}, func(_ *sim.Context, r RWResult) { n.done = true })
}

func (n *incrNode) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	n.c.Recv(ctx, from, msg)
}

func TestPOModeReadsStaleSnapshots(t *testing.T) {
	w, cl := test3DC(ModePO, 0, 9)
	writer := NewSyncClient(w, 0, cl.NewClient(0, rand.New(rand.NewSource(1))))
	reader := NewSyncClient(w, 1, cl.NewClient(1, rand.New(rand.NewSource(2))))
	k := keyOn(cl, 0, "x")
	writer.ReadWrite(nil, []KV{{k, "v1"}})
	// The PO reader's snapshot lags by MaxCommitLag: immediately after
	// the write it still reads the old value (the stale-read anomaly).
	ro := reader.ReadOnly([]string{k})
	if ro.Vals[k] != "" {
		t.Errorf("PO read %q immediately after write; expected stale empty", ro.Vals[k])
	}
	// After the staleness bound passes, the write is visible.
	w.Run(w.Now() + cl.POStaleness() + sim.Ms(1))
	ro = reader.ReadOnly([]string{k})
	if ro.Vals[k] != "v1" {
		t.Errorf("PO read %q after staleness bound, want v1", ro.Vals[k])
	}
	// And the writer's own session sees its write immediately (t_min).
	ro = writer.ReadOnly([]string{k})
	if ro.Vals[k] != "v1" {
		t.Errorf("PO writer session read %q, want its own write", ro.Vals[k])
	}
}

func TestFenceBoundsStaleness(t *testing.T) {
	// After a fence, every future RO transaction (any client) observes
	// the fencing client's frontier (§5.1).
	w, cl := test3DC(ModeRSS, sim.Ms(10), 10)
	writer := NewSyncClient(w, 0, cl.NewClient(0, rand.New(rand.NewSource(1))))
	k := keyOn(cl, 0, "x")
	res := writer.ReadWrite(nil, []KV{{k, "v1"}})
	start := w.Now()
	writer.Fence()
	fenceLat := w.Now() - start
	// The fence waits out t_min + L; t_min = t_c of the recent commit,
	// so the wait is positive but bounded by L + 2ε.
	if fenceLat <= 0 {
		t.Error("fence with fresh t_min returned immediately")
	}
	if max := cl.MaxCommitLag() + 2*sim.Ms(10) + sim.Ms(1); fenceLat > max {
		t.Errorf("fence took %v, want ≤ %v", fenceLat, max)
	}
	_ = res
}

func TestBestCoordinatorEstimates(t *testing.T) {
	w, cl := test3DC(ModeStrict, 0, 11)
	_ = w
	coord, est := cl.BestCoordinator(0, []int{0, 1, 2})
	if est <= 0 {
		t.Error("estimate not positive")
	}
	// The estimate must not exceed the trivially worst path.
	worst := sim.Ms(136+136) * 4
	if est > worst {
		t.Errorf("estimate %v exceeds sanity bound", est)
	}
	if coord < 0 || coord > 2 {
		t.Errorf("coordinator %d out of range", coord)
	}
	// Estimates should be reasonably close to measured commit latency.
	c := NewSyncClient(w, 0, cl.NewClient(0, rand.New(rand.NewSource(1))))
	keys := []KV{{keyOn(cl, 0, "a"), "v"}, {keyOn(cl, 1, "b"), "v"}, {keyOn(cl, 2, "c"), "v"}}
	start := w.Now()
	c.ReadWrite(nil, keys)
	measured := w.Now() - start
	if measured < est {
		t.Errorf("measured commit %v below the minimum estimate %v", measured, est)
	}
	if measured > est*2 {
		t.Errorf("measured commit %v more than 2× the estimate %v", measured, est)
	}
}

func TestShardOfStable(t *testing.T) {
	_, cl := test3DC(ModeStrict, 0, 12)
	for _, k := range []string{"a", "b", "c", "key00000001"} {
		if cl.ShardOf(k) != cl.ShardOf(k) {
			t.Error("ShardOf not deterministic")
		}
		if cl.ShardOf(k) < 0 || cl.ShardOf(k) > 2 {
			t.Error("ShardOf out of range")
		}
	}
}

func TestROAfterRWSeesOwnWrite(t *testing.T) {
	// t_min guarantees read-your-writes within a session in RSS mode.
	w, cl := test3DC(ModeRSS, sim.Ms(10), 13)
	c := NewSyncClient(w, 2, cl.NewClient(2, rand.New(rand.NewSource(3))))
	k := keyOn(cl, 1, "mine")
	res := c.ReadWrite(nil, []KV{{k, "v"}})
	ro := c.ReadOnly([]string{k})
	if ro.Vals[k] != "v" {
		t.Errorf("session read %q after own commit at %d", ro.Vals[k], res.TC)
	}
	if c.C.TMin() < res.TC {
		t.Errorf("t_min %d below own commit %d", c.C.TMin(), res.TC)
	}
}
