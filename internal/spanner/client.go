package spanner

import (
	"fmt"
	"sort"

	"rsskv/internal/sim"
	"rsskv/internal/truetime"
)

// RWResult reports a committed read-write transaction.
type RWResult struct {
	TC       truetime.Timestamp
	Reads    map[string]string
	Attempts int // 1 + number of aborts
}

// ROResult reports a completed read-only transaction.
type ROResult struct {
	TSnap   truetime.Timestamp
	Vals    map[string]string
	Blocked bool // the client waited for slow replies (RSS) or shard blocking
}

// Client issues Spanner transactions from inside a simulation node. The
// owner node forwards incoming messages to Recv. One transaction may be in
// flight at a time.
type Client struct {
	ID      uint32
	cluster *Cluster
	region  sim.RegionID
	clock   *truetime.Clock
	mode    Mode

	tmin  truetime.Timestamp // minimum read timestamp (Algorithm 1 state)
	poLag sim.Time           // this client's replica lag (ModePO only)

	nextSeq  uint64
	nextReq  uint64
	inflight bool

	rw *rwState
	ro *roState
}

type rwState struct {
	txn      TxnID
	prio     int64
	start    truetime.Timestamp
	readKeys []string
	writes   []KV
	compute  func(reads map[string]string) []KV
	attempts int

	phase       int // 0 reading, 1 committing
	pendingRead int
	reads       map[string]string
	readReqs    map[uint64]string
	aborted     bool
	done        func(*sim.Context, RWResult)
}

type roState struct {
	reqID   uint64
	keys    []string
	tread   truetime.Timestamp
	pending int // outstanding fast replies
	blocked bool

	// Algorithm 1 state.
	prepared map[TxnID]*SkippedPrep   // P
	resolved map[TxnID][]*ROSlowReply // slow replies that raced fast ones
	vals     []VersionedKV            // V
	tsnap    truetime.Timestamp
	fastDone bool
	done     func(*sim.Context, ROResult)
}

// NewClient is created through Cluster.NewClient.
func newClient(id uint32, cl *Cluster, region sim.RegionID, clock *truetime.Clock) *Client {
	return &Client{
		ID:      id,
		cluster: cl,
		region:  region,
		clock:   clock,
		mode:    cl.cfg.Mode,
		// Namespace request IDs by client so multiple clients can share
		// one node (load generators) without reply collisions.
		nextReq: uint64(id) << 32,
	}
}

// TMin exposes the client's minimum read timestamp (testing, fences,
// context propagation per §4.2).
func (c *Client) TMin() truetime.Timestamp { return c.tmin }

// SetTMin merges an externally propagated causal constraint (e.g. received
// alongside an out-of-band message; §4.2).
func (c *Client) SetTMin(t truetime.Timestamp) {
	if t > c.tmin {
		c.tmin = t
	}
}

// ResetSession clears the causal context; partly-open load generators call
// this between sessions (§6: "The clients use a separate t_min for each
// session").
func (c *Client) ResetSession() { c.tmin = 0 }

// Idle reports whether no transaction is in flight.
func (c *Client) Idle() bool { return !c.inflight }

// ReadWrite starts a read-write transaction reading readKeys and writing
// writes. Write keys are locked at prepare; read keys during execution.
// The transaction retries automatically on aborts (wound-wait) and
// completes only when committed.
func (c *Client) ReadWrite(ctx *sim.Context, readKeys []string, writes []KV, done func(*sim.Context, RWResult)) {
	c.readWrite(ctx, readKeys, writes, nil, done)
}

// ReadWriteFunc starts a read-write transaction whose write set is
// computed from the values read, under the read locks (the classic
// read-modify-write shape: e.g. appending a photo to an album, §2.2). The
// computation re-runs on every retry.
func (c *Client) ReadWriteFunc(ctx *sim.Context, readKeys []string, compute func(reads map[string]string) []KV, done func(*sim.Context, RWResult)) {
	c.readWrite(ctx, readKeys, nil, compute, done)
}

func (c *Client) readWrite(ctx *sim.Context, readKeys []string, writes []KV, compute func(map[string]string) []KV, done func(*sim.Context, RWResult)) {
	if c.inflight {
		panic("spanner: client already has a transaction in flight")
	}
	c.inflight = true
	start := c.clock.Now(ctx.Now()).Latest
	c.rw = &rwState{
		prio:     int64(start),
		start:    start,
		readKeys: readKeys,
		writes:   writes,
		compute:  compute,
		done:     done,
	}
	c.beginAttempt(ctx)
}

func (c *Client) beginAttempt(ctx *sim.Context) {
	s := c.rw
	c.nextSeq++
	s.txn = TxnID{Client: c.ID, Seq: c.nextSeq}
	s.attempts++
	s.phase = 0
	s.aborted = false
	s.reads = make(map[string]string, len(s.readKeys))
	s.readReqs = make(map[uint64]string, len(s.readKeys))
	s.pendingRead = len(s.readKeys)
	if s.pendingRead == 0 {
		c.startCommit(ctx)
		return
	}
	for _, k := range s.readKeys {
		c.nextReq++
		s.readReqs[c.nextReq] = k
		ctx.Send(c.cluster.LeaderNode(c.cluster.ShardOf(k)), ReadReq{
			Txn: s.txn, Prio: s.prio, Key: k, ReqID: c.nextReq,
		})
	}
}

// startCommit runs two-phase commit (§5, "Spanner background").
func (c *Client) startCommit(ctx *sim.Context) {
	s := c.rw
	s.phase = 1
	if s.compute != nil {
		s.writes = s.compute(s.reads)
	}
	shards := c.participantShards()
	coord, est := c.cluster.BestCoordinator(c.region, shards)
	tee := c.clock.Now(ctx.Now()).Earliest + truetime.Timestamp(est)

	var others []sim.NodeID
	for _, sh := range shards {
		if sh != coord {
			others = append(others, c.cluster.LeaderNode(sh))
		}
	}
	for _, sh := range shards {
		req := PrepareReq{
			Txn:        s.txn,
			Prio:       s.prio,
			Writes:     c.writesFor(sh),
			ReadKeys:   c.readKeysFor(sh),
			TEE:        tee,
			StartTS:    s.start,
			Coord:      c.cluster.LeaderNode(coord),
			ClientNode: ctx.Self(),
		}
		if sh == coord {
			req.IsCoord = true
			req.NumParts = len(shards)
			req.Participants = others
		}
		ctx.Send(c.cluster.LeaderNode(sh), req)
	}
}

// participantShards returns the sorted set of shards the transaction
// touched.
func (c *Client) participantShards() []int {
	s := c.rw
	set := map[int]bool{}
	for _, k := range s.readKeys {
		set[c.cluster.ShardOf(k)] = true
	}
	for _, w := range s.writes {
		set[c.cluster.ShardOf(w.Key)] = true
	}
	out := make([]int, 0, len(set))
	for sh := range set {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}

func (c *Client) writesFor(shard int) []KV {
	var out []KV
	for _, w := range c.rw.writes {
		if c.cluster.ShardOf(w.Key) == shard {
			out = append(out, w)
		}
	}
	return out
}

func (c *Client) readKeysFor(shard int) []string {
	var out []string
	for _, k := range c.rw.readKeys {
		if c.cluster.ShardOf(k) == shard {
			out = append(out, k)
		}
	}
	return out
}

// abortAndRetry releases the failed attempt and retries with the original
// wound-wait priority after a short randomized backoff.
func (c *Client) abortAndRetry(ctx *sim.Context) {
	s := c.rw
	for _, sh := range c.participantShards() {
		ctx.Send(c.cluster.LeaderNode(sh), ReleaseReq{Txn: s.txn})
	}
	backoff := sim.Ms(2) + sim.Time(ctx.Rand().Int63n(int64(sim.Ms(8))))
	ctx.After(backoff, func(ctx *sim.Context) { c.beginAttempt(ctx) })
}

// ReadOnly starts a read-only transaction over keys (Algorithm 1).
func (c *Client) ReadOnly(ctx *sim.Context, keys []string, done func(*sim.Context, ROResult)) {
	if c.inflight {
		panic("spanner: client already has a transaction in flight")
	}
	c.inflight = true
	c.nextReq++
	tread := c.clock.Now(ctx.Now()).Latest
	tmin := c.tmin
	switch c.mode {
	case ModeStrict:
		tmin = 0
	case ModePO:
		// PO ablation: read a consistent but stale snapshot — behind
		// real time by this client's replication lag (lazy replicas lag
		// unevenly, so the lag is per-client), so conflicting prepared
		// transactions essentially never block it, but completed writes
		// by other clients may be invisible (no real-time order, no
		// cross-service causality).
		stale := tread - truetime.Timestamp(c.poLag)
		if stale < c.tmin {
			stale = c.tmin
		}
		tread = stale
		tmin = 0
	}
	c.ro = &roState{
		reqID:    c.nextReq,
		keys:     keys,
		tread:    tread,
		prepared: make(map[TxnID]*SkippedPrep),
		resolved: make(map[TxnID][]*ROSlowReply),
		done:     done,
	}
	shards := map[int][]string{}
	for _, k := range keys {
		sh := c.cluster.ShardOf(k)
		shards[sh] = append(shards[sh], k)
	}
	c.ro.pending = len(shards)
	for sh, ks := range shards {
		ctx.Send(c.cluster.LeaderNode(sh), ROCommit{ReqID: c.ro.reqID, Keys: ks, TRead: tread, TMin: tmin})
	}
}

// Fence implements the Spanner-RSS real-time fence (§5.1): block until
// t_min + L < TT.now().earliest, after which every future RO transaction
// anywhere reflects a state at least as recent as t_min.
func (c *Client) Fence(ctx *sim.Context, done func(*sim.Context)) {
	target := c.tmin + truetime.Timestamp(c.cluster.MaxCommitLag())
	wait := c.clock.UntilAfter(ctx.Now(), target)
	if wait == 0 {
		done(ctx)
		return
	}
	ctx.After(wait, func(ctx *sim.Context) { done(ctx) })
}

// Recv dispatches shard replies. The owner node must forward all messages.
func (c *Client) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case ReadReply:
		c.onReadReply(ctx, m)
	case AbortNotify:
		c.onAbortNotify(ctx, m)
	case CommitReply:
		c.onCommitReply(ctx, m)
	case ROFastReply:
		c.onROFast(ctx, m)
	case ROSlowReply:
		c.onROSlow(ctx, m)
	default:
		panic(fmt.Sprintf("spanner: client got unexpected message %T", msg))
	}
}

func (c *Client) onReadReply(ctx *sim.Context, m ReadReply) {
	s := c.rw
	if s == nil || s.phase != 0 || s.aborted {
		return
	}
	key, ok := s.readReqs[m.ReqID]
	if !ok {
		return // stale reply from a previous attempt
	}
	delete(s.readReqs, m.ReqID)
	if !m.OK {
		// Wounded. ReleaseReq is sent after the in-flight requests on
		// each channel (FIFO), so it is the last message per shard.
		s.aborted = true
		c.abortAndRetry(ctx)
		return
	}
	s.reads[key] = m.Value
	s.pendingRead--
	if s.pendingRead == 0 {
		c.startCommit(ctx)
	}
}

func (c *Client) onAbortNotify(ctx *sim.Context, m AbortNotify) {
	s := c.rw
	if s == nil || m.Txn != s.txn {
		return
	}
	if s.phase == 0 && !s.aborted {
		s.aborted = true
		c.abortAndRetry(ctx)
	}
	// In the commit phase the coordinator's decision settles the outcome.
}

func (c *Client) onCommitReply(ctx *sim.Context, m CommitReply) {
	s := c.rw
	if s == nil || m.Txn != s.txn || s.phase != 1 {
		return
	}
	if !m.Committed {
		c.abortAndRetry(ctx)
		return
	}
	finish := func(ctx *sim.Context) {
		if m.TC > c.tmin {
			c.tmin = m.TC
		}
		res := RWResult{TC: m.TC, Reads: s.reads, Attempts: s.attempts}
		c.rw = nil
		c.inflight = false
		s.done(ctx, res)
	}
	// Ensure the advertised earliest end time has truly passed before the
	// transaction ends at the client (§5: "the client later ensures t_ee
	// is less than the actual client-side end time").
	wait := c.clock.UntilAfter(ctx.Now(), m.TEE)
	if wait == 0 {
		finish(ctx)
		return
	}
	ctx.After(wait, finish)
}

// ---- Algorithm 1: the RSS read-only client ----

func (c *Client) onROFast(ctx *sim.Context, m ROFastReply) {
	s := c.ro
	if s == nil || m.ReqID != s.reqID || s.fastDone {
		return
	}
	s.vals = append(s.vals, m.Vals...)
	for i := range m.Skipped {
		sp := m.Skipped[i]
		s.prepared[sp.Txn] = &sp
		for _, r := range s.resolved[sp.Txn] {
			c.applyResolution(s, r)
		}
		delete(s.resolved, sp.Txn)
	}
	s.pending--
	if s.pending > 0 {
		return
	}
	s.fastDone = true
	s.tsnap = c.calculateSnapshotTS(s)
	// Drain slow replies that raced fast replies from other shards.
	for txn, replies := range s.resolved {
		for _, r := range replies {
			if _, inP := s.prepared[txn]; inP {
				c.applyResolution(s, r)
			} else if r.Committed && len(r.Vals) > 0 {
				s.vals = append(s.vals, r.Vals...)
			}
		}
	}
	s.resolved = nil
	c.checkSnapshot(ctx, s)
}

// calculateSnapshotTS is Algorithm 1 lines 14–20: the earliest timestamp
// at which every key has a value — the max over keys of the (single)
// fast-path version's commit timestamp.
func (c *Client) calculateSnapshotTS(s *roState) truetime.Timestamp {
	var tsnap truetime.Timestamp
	for _, k := range s.keys {
		earliest := truetime.Timestamp(-1)
		for _, v := range s.vals {
			if v.Key == k && (earliest == -1 || v.TC < earliest) {
				earliest = v.TC
			}
		}
		if earliest > tsnap {
			tsnap = earliest
		}
	}
	return tsnap
}

// checkSnapshot is Algorithm 1 lines 9–12 and 21–23.
func (c *Client) checkSnapshot(ctx *sim.Context, s *roState) {
	for _, sp := range s.prepared {
		if sp.TP <= s.tsnap {
			s.blocked = true
			return // WAIT: a slow reply will re-run this check
		}
	}
	// COMMIT.
	if s.tsnap > c.tmin {
		c.tmin = s.tsnap
	}
	vals := make(map[string]string, len(s.keys))
	for _, k := range s.keys {
		var best VersionedKV
		best.TC = -1
		for _, v := range s.vals {
			if v.Key == k && v.TC <= s.tsnap && v.TC > best.TC {
				best = v
			}
		}
		if best.TC >= 0 {
			vals[k] = best.Value
		} else {
			vals[k] = ""
		}
	}
	res := ROResult{TSnap: s.tsnap, Vals: vals, Blocked: s.blocked}
	c.ro = nil
	c.inflight = false
	s.done(ctx, res)
}

func (c *Client) onROSlow(ctx *sim.Context, m ROSlowReply) {
	s := c.ro
	if s == nil || m.ReqID != s.reqID {
		return
	}
	if !s.fastDone {
		// Slow reply raced ahead of another shard's fast reply; stash.
		s.resolved[m.Txn] = append(s.resolved[m.Txn], &m)
		return
	}
	// Multiple shards may have skipped the same transaction; every
	// shard's slow reply carries that shard's values, so apply them all.
	if _, inP := s.prepared[m.Txn]; inP {
		c.applyResolution(s, &m)
	} else if m.Committed && len(m.Vals) > 0 {
		s.vals = append(s.vals, m.Vals...)
	}
	c.checkSnapshot(ctx, s)
}

// applyResolution is Algorithm 1 line 11 (UpdatePrepared): drop the
// transaction from P and, on commit, add its written values to V.
func (c *Client) applyResolution(s *roState, m *ROSlowReply) {
	sp := s.prepared[m.Txn]
	delete(s.prepared, m.Txn)
	if !m.Committed {
		return
	}
	if len(m.Vals) > 0 {
		s.vals = append(s.vals, m.Vals...)
		return
	}
	// §6 optimization 1: values were buffered in the fast path; stamp
	// them with the commit timestamp learned from another shard.
	if sp != nil {
		for _, w := range sp.Writes {
			s.vals = append(s.vals, VersionedKV{Key: w.Key, Value: w.Value, TC: m.TC})
		}
	}
}
