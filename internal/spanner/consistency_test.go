package spanner

import (
	"math/rand"
	"testing"

	"rsskv/internal/core"
	"rsskv/internal/history"
	"rsskv/internal/sim"
	"rsskv/internal/workload"
)

// txnDriver runs random Retwis-shaped transactions and records them.
type txnDriver struct {
	c    *Client
	rec  *history.Recorder
	gen  *workload.Retwis
	left int
	done *int
}

func (d *txnDriver) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	d.c.Recv(ctx, from, msg)
}

func (d *txnDriver) Init(ctx *sim.Context) { d.next(ctx) }

func (d *txnDriver) next(ctx *sim.Context) {
	if d.left == 0 {
		*d.done++
		return
	}
	d.left--
	txn := d.gen.Next(ctx.Rand())
	if txn.IsReadOnly() {
		op := d.rec.NewOp(int(d.c.ID), core.ROTxn, ctx.Now())
		d.c.ReadOnly(ctx, txn.ReadKeys, func(ctx *sim.Context, r ROResult) {
			op.Reads = map[string]string{}
			for k, v := range r.Vals {
				op.Reads[k] = v
			}
			op.Version = int64(r.TSnap)
			d.rec.Done(op, ctx.Now())
			d.next(ctx)
		})
		return
	}
	op := d.rec.NewOp(int(d.c.ID), core.RWTxn, ctx.Now())
	writes := make([]KV, 0, len(txn.WriteKeys))
	wmap := map[string]string{}
	for _, k := range txn.WriteKeys {
		v := d.rec.UniqueValue()
		writes = append(writes, KV{Key: k, Value: v})
		wmap[k] = v
	}
	d.c.ReadWrite(ctx, txn.ReadKeys, writes, func(ctx *sim.Context, r RWResult) {
		op.Reads = map[string]string{}
		for k, v := range r.Reads {
			if wmap[k] == "" || v != wmap[k] {
				op.Reads[k] = v
			}
		}
		op.Writes = wmap
		op.Version = int64(r.TC)
		d.rec.Done(op, ctx.Now())
		d.next(ctx)
	})
}

func runSpannerWorkload(t *testing.T, mode Mode, seed int64, nClients, txnsEach int) *history.History {
	t.Helper()
	w, cl := test3DC(mode, sim.Ms(10), seed)
	rec := history.NewRecorder()
	gen := workload.NewRetwis(workload.NewUniform(12)) // tiny keyspace: heavy contention
	done := 0
	for i := 0; i < nClients; i++ {
		d := &txnDriver{c: cl.NewClient(sim.RegionID(i%3), rand.New(rand.NewSource(seed*100+int64(i)))), rec: rec, gen: gen, left: txnsEach, done: &done}
		w.AddNode(d, sim.RegionID(i%3))
	}
	if !w.RunUntil(func() bool { return done == nClients }, 3600*sim.Second) {
		t.Fatalf("workload stuck: %d/%d clients done", done, nClients)
	}
	return &rec.H
}

func TestSpannerHistoryIsStrictlySerializable(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		h := runSpannerWorkload(t, ModeStrict, seed, 6, 12)
		if err := history.Check(h, core.StrictSerializability); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := history.Check(h, core.RSS); err != nil {
			t.Fatalf("seed %d RSS: %v", seed, err)
		}
	}
}

func TestSpannerRSSHistorySatisfiesRSS(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		h := runSpannerWorkload(t, ModeRSS, seed, 6, 12)
		if err := history.Check(h, core.RSS); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSpannerPOHistoryIsPOSerializable(t *testing.T) {
	h := runSpannerWorkload(t, ModePO, 5, 6, 10)
	if err := history.Check(h, core.POSerializability); err != nil {
		t.Fatal(err)
	}
}

// TestRSSRelaxationHistory records the Figure 4 anomaly window from a live
// Spanner-RSS run: one RO observes a committing transaction's writes at
// the coordinator shard while a later RO misses them at the still-prepared
// participant. The history must violate strict serializability and
// satisfy RSS.
func TestRSSRelaxationHistory(t *testing.T) {
	w, cl := test3DC(ModeRSS, sim.Ms(10), 42)
	k0, k1 := keyOn(cl, 0, "f"), keyOn(cl, 1, "g")
	rec := history.NewRecorder()

	// The writer is far (IR) from the coordinator (CA), so there is a
	// wide window where the coordinator has applied the commit but the
	// transaction's earliest end time t_ee has not yet passed — exactly
	// Figure 4's anomaly window.
	holder := &prepareHolder{
		c:      cl.NewClient(2, rand.New(rand.NewSource(7))),
		writes: []KV{{k0, "new0"}, {k1, "new1"}},
	}
	w.AddNode(holder, 2)
	cw := rec.NewOp(0, core.RWTxn, 0)
	cw.Writes = map[string]string{k0: "new0", k1: "new1"}

	r1 := NewSyncClient(w, 0, cl.NewClient(1, rand.New(rand.NewSource(8))))
	r2 := NewSyncClient(w, 1, cl.NewClient(2, rand.New(rand.NewSource(9))))

	// Wait until the coordinator shard (shard 0, CA) applied the commit
	// but the participant (shard 1, VA) is still prepared.
	ok := w.RunUntil(func() bool {
		return cl.Shards[0].Store().Latest(k0).Value == "new0" &&
			len(cl.Shards[1].prepared) > 0
	}, 10*sim.Second)
	if !ok {
		t.Skip("anomaly window not hit under this timing; protocol change?")
	}

	// CR1 observes the new value at the coordinator shard.
	o1 := rec.NewOp(1, core.ROTxn, w.Now())
	res1 := r1.ReadOnly([]string{k0})
	o1.Reads = map[string]string{k0: res1.Vals[k0]}
	o1.Version = int64(res1.TSnap)
	rec.Done(o1, w.Now())
	if res1.Vals[k0] != "new0" {
		t.Fatalf("CR1 read %q, want new0", res1.Vals[k0])
	}

	if len(cl.Shards[1].prepared) == 0 {
		t.Skip("participant resolved before CR2 could read")
	}
	w.Run(w.Now() + sim.Ms(1))

	// CR2 misses the write at the still-prepared participant.
	o2 := rec.NewOp(2, core.ROTxn, w.Now())
	res2 := r2.ReadOnly([]string{k1})
	o2.Reads = map[string]string{k1: res2.Vals[k1]}
	o2.Version = int64(res2.TSnap)
	rec.Done(o2, w.Now())
	if res2.Vals[k1] != "" {
		t.Fatalf("CR2 read %q, want the old value (RSS skip)", res2.Vals[k1])
	}

	// Finish the writer and complete its record.
	if !w.RunUntil(func() bool { return holder.done }, 10*sim.Second) {
		t.Fatal("writer stuck")
	}
	cw.Version = int64(holder.tc)
	rec.Done(cw, w.Now())

	if err := history.Check(&rec.H, core.StrictSerializability); err == nil {
		t.Error("Figure 4 anomaly window passed strict serializability")
	}
	if err := history.Check(&rec.H, core.RSS); err != nil {
		t.Errorf("Figure 4 anomaly window must satisfy RSS: %v", err)
	}
}

func TestSpannerAbortsAreRetried(t *testing.T) {
	// Under heavy hot-key contention, wounds must occur and every
	// transaction must still commit exactly once.
	h := runSpannerWorkload(t, ModeStrict, 9, 8, 10)
	if h.Len() != 80 {
		t.Fatalf("recorded %d ops, want 80 (all txns committed once)", h.Len())
	}
	for _, op := range h.Ops {
		if !op.Complete() {
			t.Errorf("op %d never completed", op.ID)
		}
	}
}
