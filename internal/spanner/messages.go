package spanner

import (
	"rsskv/internal/sim"
	"rsskv/internal/truetime"
)

// ReadReq is a read inside a RW transaction's execution phase: it acquires
// a shared lock and returns the latest committed value.
type ReadReq struct {
	Txn   TxnID
	Prio  int64 // wound-wait priority (start timestamp)
	Key   string
	ReqID uint64
}

// ReadReply answers a ReadReq. OK is false when the transaction was
// wounded or aborted; the client must abort and retry.
type ReadReply struct {
	ReqID uint64
	Key   string
	Value string
	TC    truetime.Timestamp
	OK    bool
}

// PrepareReq starts two-phase commit at one participant shard. The client
// sends one to every touched shard; IsCoord marks the coordinator, which
// collects PrepareVotes from the others (§5, "Spanner background").
type PrepareReq struct {
	Txn          TxnID
	Prio         int64
	Writes       []KV     // this shard's portion of the write set
	ReadKeys     []string // this shard's read keys (lock validation)
	TEE          truetime.Timestamp
	StartTS      truetime.Timestamp
	Coord        sim.NodeID // coordinator shard leader
	IsCoord      bool
	NumParts     int          // total participants (coordinator only)
	Participants []sim.NodeID // other participants' leaders (coordinator only)
	ClientNode   sim.NodeID   // where the commit reply goes
}

// PrepareVote is a participant's 2PC vote to the coordinator.
type PrepareVote struct {
	Txn TxnID
	OK  bool
	TP  truetime.Timestamp
	TEE truetime.Timestamp // t_ee advanced by wound-wait blocking (§6 opt. 2)
}

// CommitDecision is the coordinator's outcome broadcast to participants.
type CommitDecision struct {
	Txn       TxnID
	Committed bool
	TC        truetime.Timestamp
}

// CommitReply is the coordinator's outcome sent to the client.
type CommitReply struct {
	Txn       TxnID
	Committed bool
	TC        truetime.Timestamp
	TEE       truetime.Timestamp // max adjusted t_ee; client waits past it
}

// AbortNotify tells a client its executing transaction was wounded.
type AbortNotify struct {
	Txn TxnID
}

// ReleaseReq releases an aborted transaction's locks at a shard.
type ReleaseReq struct {
	Txn TxnID
}

// ROCommit is a read-only transaction's single round to a shard
// (Algorithm 1 line 5). TMin is zero for baseline Spanner.
type ROCommit struct {
	ReqID uint64
	Keys  []string
	TRead truetime.Timestamp
	TMin  truetime.Timestamp
}

// SkippedPrep describes a prepared transaction the shard skipped
// (Algorithm 2 line 9), with its buffered writes (§6 optimization 1).
type SkippedPrep struct {
	Txn    TxnID
	TP     truetime.Timestamp
	Writes []KV // intersection with the RO's keys
}

// ROFastReply is Algorithm 2 line 10.
type ROFastReply struct {
	ReqID   uint64
	Vals    []VersionedKV
	Skipped []SkippedPrep
}

// ROSlowReply is Algorithm 2 lines 15 and 17: the resolution of one
// skipped prepared transaction.
type ROSlowReply struct {
	ReqID     uint64
	Txn       TxnID
	Committed bool
	TC        truetime.Timestamp
	Vals      []VersionedKV
}
