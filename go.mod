module rsskv

go 1.22
