module rsskv

go 1.21
