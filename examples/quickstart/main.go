// Quickstart: build a five-region Gryff-RSC cluster in the simulator, run
// reads, writes, read-modify-writes, and a real-time fence, and print the
// virtual-time latency of each operation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rsskv/internal/gryff"
	"rsskv/internal/sim"
)

func main() {
	// One replica in each of CA, VA, IR, OR, JP (Table 2 RTTs).
	net := sim.Topology5Region()
	world := sim.NewWorld(net, 1)
	cluster := gryff.NewCluster(world, net, gryff.Config{
		Regions: []sim.RegionID{0, 1, 2, 3, 4},
	})

	// A Gryff-RSC client homed in Virginia and one in Ireland.
	va := gryff.NewSyncClient(world, 1, cluster.NewClient(1, 1, gryff.ModeRSC))
	ir := gryff.NewSyncClient(world, 2, cluster.NewClient(2, 2, gryff.ModeRSC))

	timed := func(name string, f func() string) {
		start := world.Now()
		detail := f()
		fmt.Printf("%-26s %8.1f ms   %s\n", name, (world.Now() - start).Millis(), detail)
	}

	timed("VA write cart=apples", func() string {
		va.Write("cart", "apples")
		return ""
	})
	timed("VA read cart", func() string {
		r := va.Read("cart")
		return fmt.Sprintf("-> %q (one round: %v)", r.Value, r.FastPath)
	})
	timed("IR read cart", func() string {
		return fmt.Sprintf("-> %q", ir.Read("cart").Value)
	})
	timed("IR rmw append +oranges", func() string {
		return fmt.Sprintf("-> %q", ir.RMW("cart", gryff.FnAppend, "+oranges").Value)
	})
	timed("VA read cart", func() string {
		return fmt.Sprintf("-> %q", va.Read("cart").Value)
	})
	// A real-time fence guarantees everything this client has observed
	// is visible to all future reads, anywhere (§7.1).
	timed("VA fence", func() string {
		va.Fence()
		return ""
	})

	fmt.Println("\nGryff-RSC reads always finish in one quorum round trip;")
	fmt.Println("baseline Gryff pays a second write-back round when the quorum disagrees.")
}
