// Composition demonstrates §4's claim: individually-RSS services need
// real-time fences to guarantee RSS globally. It drives the Figure 4
// anomaly window directly: a writer far from the coordinator commits to
// two shards; during the window where the coordinator has applied the
// commit but the participant is still prepared, one reader observes the
// new value while a later reader misses it. A real-time fence by the
// first reader closes the window.
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"math/rand"

	"rsskv/internal/sim"
	"rsskv/internal/spanner"
)

type writerNode struct {
	c      *spanner.Client
	writes []spanner.KV
	done   bool
}

func (w *writerNode) Init(ctx *sim.Context) {
	w.c.ReadWrite(ctx, nil, w.writes, func(*sim.Context, spanner.RWResult) { w.done = true })
}

func (w *writerNode) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	w.c.Recv(ctx, from, msg)
}

func main() {
	net := sim.Topology3DC()
	world := sim.NewWorld(net, 42)
	cl := spanner.NewCluster(world, net, spanner.Config{
		Mode:          spanner.ModeRSS,
		NumShards:     3,
		LeaderRegions: []sim.RegionID{0, 1, 2},
		ReplicaRegions: [][]sim.RegionID{
			{1, 2}, {0, 2}, {0, 1},
		},
		Epsilon: sim.Ms(10),
	})
	// Find one key per shard.
	keyOn := func(shard int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("key-%d", i)
			if cl.ShardOf(k) == shard {
				return k
			}
		}
	}
	k0, k1 := keyOn(0), keyOn(1)

	// Writer in IR; coordinator will be the CA shard: wide t_ee window.
	writer := &writerNode{
		c:      cl.NewClient(2, rand.New(rand.NewSource(1))),
		writes: []spanner.KV{{Key: k0, Value: "new"}, {Key: k1, Value: "new"}},
	}
	world.AddNode(writer, 2)
	alice := spanner.NewSyncClient(world, 0, cl.NewClient(0, rand.New(rand.NewSource(2))))
	bob := spanner.NewSyncClient(world, 1, cl.NewClient(1, rand.New(rand.NewSource(3))))

	// Enter the anomaly window: coordinator applied, participant prepared.
	ok := world.RunUntil(func() bool {
		return cl.Shards[0].Store().Latest(k0).Value == "new"
	}, 10*sim.Second)
	if !ok {
		panic("window not reached")
	}
	fmt.Printf("t=%v: coordinator shard applied the commit; writer still waiting\n", world.Now())

	a := alice.ReadOnly([]string{k0})
	fmt.Printf("alice reads %s -> %q   (observes the committing write)\n", k0, a.Vals[k0])

	b := bob.ReadOnly([]string{k1})
	fmt.Printf("bob   reads %s -> %q  (RSS: may still miss it — A3, temporarily)\n", k1, b.Vals[k1])

	// Alice fences: all transactions she causally precedes now see her
	// frontier. This is what libRSS would insert before Alice switched
	// to another service (§4.1).
	start := world.Now()
	alice.Fence()
	fmt.Printf("alice fences (%.0f ms)\n", (world.Now() - start).Millis())

	b2 := bob.ReadOnly([]string{k1})
	fmt.Printf("bob   reads %s -> %q (after the fence: guaranteed visible)\n", k1, b2.Vals[k1])

	world.RunUntil(func() bool { return writer.done }, 10*sim.Second)
	fmt.Println("\nWithout the fence, the two reads order inconsistently across")
	fmt.Println("clients — harmless within one RSS service, but fatal for")
	fmt.Println("composition; libRSS inserts fences exactly at service switches.")
}
