// Photoshare runs the paper's running example (§2.2): a photo-sharing
// application on top of a Spanner-RSS key-value store and a linearizable
// messaging queue, composed with libRSS. Web servers in three regions add
// photos and view albums; an asynchronous worker builds thumbnails. The
// invariants I1 and I2 from Table 1 are checked continuously.
//
//	go run ./examples/photoshare
package main

import (
	"fmt"
	"math/rand"

	"rsskv/internal/photoshare"
	"rsskv/internal/queue"
	"rsskv/internal/sim"
	"rsskv/internal/spanner"
)

func main() {
	net := sim.Topology3DC()
	world := sim.NewWorld(net, 7)
	kv := spanner.NewCluster(world, net, spanner.Config{
		Mode:          spanner.ModeRSS,
		NumShards:     3,
		LeaderRegions: []sim.RegionID{0, 1, 2},
		ReplicaRegions: [][]sim.RegionID{
			{1, 2}, {0, 2}, {0, 1},
		},
		Epsilon: sim.Ms(10),
	})
	q := queue.NewCluster(world, queue.Config{LeaderRegion: 0, AcceptorRegions: []sim.RegionID{1, 2}})
	v := &photoshare.Violations{}

	servers := make([]*photoshare.WebServer, 3)
	nodes := make([]sim.NodeID, 3)
	for i := range servers {
		reg := sim.RegionID(i)
		servers[i] = photoshare.NewWebServer(
			kv.NewClient(reg, rand.New(rand.NewSource(int64(i)))),
			q.NewClient(), v, true /* libRSS fences */)
		nodes[i] = world.AddNode(servers[i], reg)
	}
	worker := photoshare.NewWorker(kv.NewClient(1, rand.New(rand.NewSource(99))), q.NewClient(), v, true)
	world.AddNode(worker, 1)

	addPhoto := func(server int, user, id string) {
		done := false
		start := world.Now()
		servers[server].AddPhoto(world.NodeContext(nodes[server]), user, id, "jpeg-bytes-"+id,
			func(*sim.Context) { done = true })
		world.RunUntil(func() bool { return done }, world.Now()+60*sim.Second)
		fmt.Printf("server %d: added %s to %s's album in %.0f ms\n",
			server, id, user, (world.Now() - start).Millis())
	}
	viewAlbum := func(server int, user string) {
		done := false
		start := world.Now()
		servers[server].ViewAlbum(world.NodeContext(nodes[server]), user,
			func(_ *sim.Context, ids []string) {
				fmt.Printf("server %d: %s's album %v (%.0f ms)\n",
					server, user, ids, (world.Now() - start).Millis())
				done = true
			})
		world.RunUntil(func() bool { return done }, world.Now()+60*sim.Second)
	}

	addPhoto(0, "alice", "sunset")
	addPhoto(2, "alice", "beach")
	viewAlbum(1, "alice")
	addPhoto(1, "bob", "mountain")
	viewAlbum(0, "bob")

	// Let the thumbnail worker drain the queue.
	world.RunUntil(func() bool { return worker.Processed >= 3 }, world.Now()+60*sim.Second)
	fmt.Printf("\nworker processed %d photos\n", worker.Processed)
	fmt.Printf("invariant violations: %v\n", v)
	fmt.Printf("libRSS fences invoked by server 0: %d\n", servers[0].Lib.Fences)
	if v.I1 == 0 && v.I2 == 0 {
		fmt.Println("I1 and I2 hold — RSS is invariant-equivalent to strict serializability.")
	}
}
