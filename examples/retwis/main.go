// Retwis runs a short version of the paper's §6.1 experiment: the Retwis
// social-network workload over Spanner and Spanner-RSS at Zipfian skew 0.9,
// printing the read-only transaction latency distribution of both systems
// side by side (Figure 5c's shape).
//
//	go run ./examples/retwis
package main

import (
	"fmt"

	"rsskv/internal/exp"
	"rsskv/internal/spanner"
)

func main() {
	cfg := exp.DefaultFig5(0.9, true /* quick */)
	fmt.Println("running Spanner (strict serializability)...")
	base := exp.RunFig5(cfg, spanner.ModeStrict)
	fmt.Println("running Spanner-RSS...")
	rss := exp.RunFig5(cfg, spanner.ModeRSS)

	fmt.Printf("\n%-8s %14s %14s %10s\n", "pctile", "spanner RO ms", "rss RO ms", "reduction")
	for _, p := range []float64{50, 90, 99, 99.5} {
		b, r := base.RO.PercentileMs(p), rss.RO.PercentileMs(p)
		fmt.Printf("p%-7g %14.1f %14.1f %9.0f%%\n", p, b, r, (b-r)/b*100)
	}
	fmt.Printf("\nRO transactions: %d vs %d; RW p50: %.1f vs %.1f ms\n",
		base.RO.N(), rss.RO.N(), base.RW.PercentileMs(50), rss.RW.PercentileMs(50))
	fmt.Println("(This is a shortened run; deeper percentiles need the full")
	fmt.Println("experiment: go run ./cmd/rssbench fig5 -skew 0.9)")
	fmt.Println("\nSpanner-RSS avoids blocking read-only transactions behind")
	fmt.Println("prepared-but-uncommitted writers whenever RSS allows (Algorithms 1-2).")
}
