package main

// The metrics mode scrapes the OpMetrics registries of live daemons —
// the kv leader, every rsskvd -mode=replica read listener, and the queue
// service answer the same opcode — merges the snapshots into one
// cross-process view, and renders a per-stage dashboard: histogram
// quantiles through internal/stats tables, bucket occupancies as ASCII
// bars, and (optionally) the whole document as machine-readable JSON.
//
// It doubles as the CI smoke gate: -require fails the run when a named
// histogram is empty in the merged view, which is how the workflow
// asserts that commit-wait and replication-ack-lag instrumentation is
// actually live end to end.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rsskv/internal/kvclient"
	"rsskv/internal/obs"
	"rsskv/internal/stats"
	"rsskv/internal/wire"
)

var (
	scrapeAddrs = flag.String("addrs", "", "metrics: comma-separated daemon addresses to scrape (kv leaders, replica read listeners, queue daemons)")
	metricsJSON = flag.String("metrics-json", "", "metrics/loadgen: write the scraped payloads and merged summary as JSON to this path (- for stdout)")
	requireHist = flag.String("require", "", "metrics: comma-separated histogram names that must be non-empty in the merged view (exit 1 otherwise)")
)

// scrapeRetryPause is how long scrapeAll waits before its one retry.
var scrapeRetryPause = 250 * time.Millisecond

// scrapeAll scrapes every address, returning one payload per reachable
// daemon. A failed scrape is retried once after a beat: a daemon
// mid-restart — or a just-promoted leader whose listener came up a
// moment ago — fails a single dial transiently, and failing the whole
// merged dashboard for that makes the gate flaky rather than strict.
// Two consecutive failures mean a genuinely dead process and remain an
// error: a smoke gate that silently skips a dead process would pass
// vacuously.
func scrapeAll(addrs []string) ([]*wire.MetricsPayload, error) {
	var ps []*wire.MetricsPayload
	for _, a := range addrs {
		p, err := kvclient.ScrapeMetrics(a, 0)
		if err != nil {
			time.Sleep(scrapeRetryPause)
			if p, err = kvclient.ScrapeMetrics(a, 0); err != nil {
				return nil, fmt.Errorf("scrape %s: %w", a, err)
			}
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// histSummary is one histogram's summary in the JSON document.
type histSummary struct {
	Count uint64  `json:"count"`
	MeanN float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
}

// sweepPoint is one open-loop load point's latency-under-throughput
// summary (loadgen -qps-sweep), recorded alongside the scrape so a
// BENCH_*.json snapshot carries the curve the run measured.
type sweepPoint struct {
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Offered     int     `json:"offered"`
	Ops         int     `json:"ops"`
	Drops       int     `json:"drops"`
	Errors      int     `json:"errors"`
	Rejects     int     `json:"rejects"`
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	P99us       float64 `json:"p99_us"`
	ROP99us     float64 `json:"ro_p99_us"`
	RWP99us     float64 `json:"rw_p99_us"`
}

// failoverSummary is a failover loadgen run's client-observed outage,
// recorded in the JSON document only when a -continue-on-error run rode
// out mid-run errors. Instants are on the run's time axis; the window
// is measured per client (first swallowed op → that client's next
// served op) and MTTR spans from the earliest failure to the moment the
// last failed client was being served again.
type failoverSummary struct {
	FirstErrorNS int64 `json:"first_error_ns"`
	RecoveredNS  int64 `json:"recovered_ns"`
	MTTRNS       int64 `json:"mttr_ns"`
	PendingOps   int   `json:"pending_ops"`
	Ops          int   `json:"ops"`
	// FollowerROs counts snapshot reads served entirely by followers over
	// the whole run. Routed follower reads go through the leader, so they
	// share the outage window — the number here is the availability the
	// architecture actually delivers around a failover, not a claim that
	// reads dodge it (see the README's Failover section).
	FollowerROs int `json:"follower_ros"`
}

// metricsDoc is the machine-readable scrape document: the raw per-process
// payloads, the merged view, and quantile summaries of the merged
// histograms. Bucket indexes are the obs log-linear scheme's. Sweep is
// present only on open-loop loadgen runs; Failover only on runs that
// rode out an outage under -continue-on-error.
type metricsDoc struct {
	Sources  []*wire.MetricsPayload `json:"sources"`
	Merged   *wire.MetricsPayload   `json:"merged"`
	Summary  map[string]histSummary `json:"summary"`
	Sweep    []sweepPoint           `json:"sweep,omitempty"`
	Failover *failoverSummary       `json:"failover,omitempty"`
}

func buildMetricsDoc(sources []*wire.MetricsPayload) *metricsDoc {
	doc := &metricsDoc{
		Sources: sources,
		Merged:  obs.MergePayloads(sources...),
		Summary: map[string]histSummary{},
	}
	for _, h := range doc.Merged.Hists {
		if h.Count == 0 {
			continue
		}
		doc.Summary[h.Name] = histSummary{
			Count: h.Count,
			MeanN: obs.HistMean(h),
			P50:   obs.HistQuantile(h, 0.50),
			P90:   obs.HistQuantile(h, 0.90),
			P99:   obs.HistQuantile(h, 0.99),
			Max:   obs.HistMax(h),
		}
	}
	return doc
}

func writeMetricsJSON(path string, doc *metricsDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// renderMetrics prints the dashboard: per-source one-liners, counter and
// gauge tables, and a per-stage histogram table (count, mean, quantiles,
// max — durations shown in microseconds, plain counts as-is).
func renderMetrics(doc *metricsDoc, plotHists bool) {
	for _, p := range doc.Sources {
		fmt.Fprintf(os.Stderr, "scraped %s: %d counters, %d gauges, %d hists\n",
			p.Source, len(p.Counters), len(p.Gauges), len(p.Hists))
	}
	m := doc.Merged

	if len(m.Counters) > 0 || len(m.Gauges) > 0 {
		tbl := &stats.Table{Title: "counters and gauges (merged)", Columns: []string{"value"}}
		for _, v := range m.Counters {
			tbl.Add(v.Name, float64(v.Value))
		}
		for _, v := range m.Gauges {
			tbl.Add(v.Name+" (gauge)", float64(v.Value))
		}
		emit(tbl)
	}

	hists := m.Hists
	tbl := &stats.Table{
		Title:   "per-stage histograms (merged; durations in us, counts raw)",
		Columns: []string{"n", "mean", "p50", "p90", "p99", "max"},
	}
	for _, h := range hists {
		if h.Count == 0 {
			continue
		}
		div := 1000.0 // ns -> us
		if isCountHist(h.Name) {
			div = 1
		}
		tbl.Add(h.Name,
			float64(h.Count),
			obs.HistMean(h)/div,
			float64(obs.HistQuantile(h, 0.50))/div,
			float64(obs.HistQuantile(h, 0.90))/div,
			float64(obs.HistQuantile(h, 0.99))/div,
			float64(obs.HistMax(h))/div,
		)
	}
	emit(tbl)

	if plotHists {
		for _, h := range hists {
			if h.Count == 0 {
				continue
			}
			labels, counts := histBars(h)
			fmt.Println(stats.PlotBars(h.Name, 50, labels, counts))
		}
	}
}

// isCountHist reports whether a histogram records plain counts (queue
// depths, batch sizes, payload bytes) rather than nanosecond durations.
func isCountHist(name string) bool {
	return strings.Contains(name, "depth") || strings.Contains(name, "occupancy") ||
		strings.Contains(name, "batch") || strings.HasSuffix(name, "bytes")
}

// histBars coarsens a histogram to at most 16 power-of-two-ish rows for
// the ASCII bar chart.
func histBars(h wire.MetricHist) ([]string, []float64) {
	type row struct {
		lo, hi int64
		n      float64
	}
	var rows []row
	for _, b := range h.Buckets {
		lo, hi := obs.BucketBounds(int(b.Idx))
		if len(rows) > 0 && rows[len(rows)-1].hi+1 == lo && len(h.Buckets) > 16 {
			// Merge adjacent buckets when the chart would overflow.
			last := &rows[len(rows)-1]
			if last.hi < last.lo*2 {
				last.hi = hi
				last.n += float64(b.N)
				continue
			}
		}
		rows = append(rows, row{lo: lo, hi: hi, n: float64(b.N)})
	}
	labels := make([]string, len(rows))
	counts := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = fmt.Sprintf("[%d,%d]", r.lo, r.hi)
		counts[i] = r.n
	}
	return labels, counts
}

// metricsCmd scrapes -addrs, renders the dashboard, enforces -require,
// and optionally writes -metrics-json.
func metricsCmd() {
	if *scrapeAddrs == "" {
		fmt.Fprintln(os.Stderr, "metrics: -addrs=<host:port>[,<host:port>...] is required")
		os.Exit(2)
	}
	addrs := strings.Split(*scrapeAddrs, ",")
	sources, err := scrapeAll(addrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		os.Exit(1)
	}
	doc := buildMetricsDoc(sources)
	renderMetrics(doc, *plot)
	if *metricsJSON != "" {
		if err := writeMetricsJSON(*metricsJSON, doc); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: write json: %v\n", err)
			os.Exit(1)
		}
	}
	if *requireHist != "" {
		failed := false
		for _, name := range strings.Split(*requireHist, ",") {
			h, ok := obs.FindHist(doc.Merged, name)
			if !ok || !histNonEmpty(h) {
				fmt.Fprintf(os.Stderr, "metrics: required histogram %q is empty in the merged view\n", name)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("metrics: all required histograms non-empty: %s\n", *requireHist)
	}
}

// histNonEmpty reports whether a histogram actually recorded samples. The
// -require gate must not be satisfiable by a histogram that merely exists:
// the transmitted Count and the bucket occupancies travel as separate
// fields, so a registry bug (or a merge dropping buckets) could present a
// nonzero Count over all-zero buckets — or buckets without a Count — and a
// gate checking either alone would pass vacuously. Demand both.
func histNonEmpty(h wire.MetricHist) bool {
	if h.Count == 0 {
		return false
	}
	var n uint64
	for _, b := range h.Buckets {
		n += b.N
	}
	return n > 0
}
