package main

// The composition mode is the live §4 experiment: the photo-share workload
// across two rsskvd daemons (albums and photos) plus the socketed queue
// service, every process's service switches mediated by libRSS, all
// operations from all three services merged into one history and checked
// against RSS.
//
// Two twins make the claim falsifiable, mirroring Table 1:
//
//	fences=on   honest daemons + libRSS fences + §4.2 baggage on the
//	            out-of-band probes. The checker must ACCEPT.
//	fences=off  no fences, no baggage, and the KV daemons dropped to the
//	            PO-serializability ablation (-po-lag): each service keeps
//	            session order but not real-time order. Sequential
//	            consistency does not compose (Perrin et al.), so the
//	            checker must REJECT with an I2/A2-shaped cycle.
//
// The ablation travels with fences=off because on a single host an honest
// rsskvd is strictly serializable and composes vacuously — without the
// relaxation the missing fences change nothing (run with -po-lag 0 to see
// that accept). The §4 fence overhead (fence count, fence latency, RO/RW
// percentile deltas) is reported when both twins run.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rsskv/internal/core"
	"rsskv/internal/history"
	"rsskv/internal/photoshare"
	"rsskv/internal/queue"
	"rsskv/internal/server"
	"rsskv/internal/stats"
)

var (
	albumAddr = flag.String("album-addr", "", "albums rsskvd; empty starts one in process")
	photoAddr = flag.String("photo-addr", "", "photos rsskvd; empty starts one in process")
	queueAddr = flag.String("queue-addr", "", "queue daemon (rsskvd -mode=queue); empty starts one in process")
	fences    = flag.String("fences", "both", "composition twins to run: on | off | both")
	poLag     = flag.Duration("po-lag", 250*time.Millisecond, "PO-serializability ablation lag applied to in-process KV daemons on the fences-off twin (0 keeps them honest: the unfenced run then composes vacuously)")
	adders    = flag.Int("adders", 2, "adder processes (one user album each)")
	viewers   = flag.Int("viewers", 2, "viewer processes (viewer 0 serves A2 probes, viewer 1 A3 relays)")
	photos    = flag.Int("photos", 60, "photos per adder")
	probes    = flag.Int("probes", 16, "out-of-band A2/A3 probes")
)

// compoStack owns the in-process daemons of one twin (nil members mean an
// external -addr was supplied).
type compoStack struct {
	albums, photos *server.Server
	queue          *queue.Server
	cfg            photoshare.LiveConfig
}

// startCompoStack boots whatever daemons the flags did not point at an
// external address. kvLag > 0 applies the PO ablation to in-process KV
// daemons.
func startCompoStack(kvLag time.Duration) (*compoStack, error) {
	st := &compoStack{}
	kvCfg := server.Config{Shards: *shards, Epsilon: *epsilon, POReadLag: kvLag}
	st.cfg = photoshare.LiveConfig{
		AlbumAddr: *albumAddr, PhotoAddr: *photoAddr, QueueAddr: *queueAddr,
		Adders: *adders, Viewers: *viewers, Photos: *photos, Probes: *probes,
		Conns: *conns, Seed: *seed,
	}
	if *quick {
		st.cfg.Photos = min(st.cfg.Photos, 15)
		st.cfg.Probes = min(st.cfg.Probes, 5)
	}
	if st.cfg.AlbumAddr == "" {
		st.albums = server.New(kvCfg)
		if err := st.albums.Start("127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("start albums: %w", err)
		}
		st.cfg.AlbumAddr = st.albums.Addr()
	}
	if st.cfg.PhotoAddr == "" {
		st.photos = server.New(kvCfg)
		if err := st.photos.Start("127.0.0.1:0"); err != nil {
			st.close()
			return nil, fmt.Errorf("start photos: %w", err)
		}
		st.cfg.PhotoAddr = st.photos.Addr()
	}
	if st.cfg.QueueAddr == "" {
		st.queue = queue.NewServer(queue.ServerConfig{Acceptors: 1})
		if err := st.queue.Start("127.0.0.1:0"); err != nil {
			st.close()
			return nil, fmt.Errorf("start queue: %w", err)
		}
		st.cfg.QueueAddr = st.queue.Addr()
	}
	return st, nil
}

func (st *compoStack) close() {
	if st.albums != nil {
		st.albums.Close()
	}
	if st.photos != nil {
		st.photos.Close()
	}
	if st.queue != nil {
		st.queue.Close()
	}
}

// runCompoTwin runs one twin and prints its table plus the checker
// verdict; expectReject inverts the success condition (the PO twin).
func runCompoTwin(label string, useFences bool, kvLag time.Duration) (*photoshare.LiveResult, bool) {
	st, err := startCompoStack(kvLag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "composition %s: %v\n", label, err)
		return nil, false
	}
	defer st.close()
	st.cfg.Fences = useFences
	st.cfg.Propagate = useFences
	res, err := photoshare.RunLive(st.cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "composition %s: %v\n", label, err)
		return nil, false
	}

	tbl := &stats.Table{
		Title:   fmt.Sprintf("composition (%s): %d adders x %d photos, %d viewers, %d probes", label, st.cfg.Adders, st.cfg.Photos, st.cfg.Viewers, st.cfg.Probes),
		Columns: []string{"value"},
	}
	tbl.Add("ops recorded", float64(res.Ops))
	tbl.Add("wall seconds", res.Elapsed.Seconds())
	tbl.Add("throughput ops/s", res.Throughput())
	tbl.Add("photos processed by worker", float64(res.Processed))
	tbl.Add("libRSS fences", float64(res.Fences))
	if res.FenceLatency.N() > 0 {
		tbl.Add("fence p50 us", res.FenceLatency.Percentile(50))
		tbl.Add("fence p99 us", res.FenceLatency.Percentile(99))
	}
	tbl.Add("snapshot read p50 us", res.ROLatency.Percentile(50))
	tbl.Add("snapshot read p99 us", res.ROLatency.Percentile(99))
	tbl.Add("read-write p50 us", res.RWLatency.Percentile(50))
	tbl.Add("read-write p99 us", res.RWLatency.Percentile(99))
	tbl.Add("queue op p50 us", res.QueueLatency.Percentile(50))
	tbl.Add("queue op p99 us", res.QueueLatency.Percentile(99))
	tbl.Add("I1 violations", float64(res.V.I1))
	tbl.Add("I2 violations", float64(res.V.I2))
	tbl.Add("A2 missed / probes", float64(res.V.A2))
	tbl.Add("A3 missed / probes", float64(res.V.A3))
	emit(tbl)

	fmt.Fprintf(os.Stderr, "checking %d-op merged history (%s) against RSS...\n", res.H.Len(), label)
	checkErr := history.Check(res.H, core.RSS)
	expectReject := !useFences && kvLag > 0
	switch {
	case expectReject && checkErr == nil:
		fmt.Fprintf(os.Stderr, "composition %s: checker ACCEPTED but the PO ablation should have broken the composition (try more -photos)\n", label)
		return res, false
	case expectReject:
		fmt.Printf("composition %s: RSS checker rejected the merged history, as the ablation predicts\n  %v\n", label, checkErr)
	case checkErr != nil:
		fmt.Fprintf(os.Stderr, "composition %s: VIOLATION: %v\n", label, checkErr)
		return res, false
	default:
		fmt.Printf("composition %s: merged cross-service history is RSS: OK\n", label)
	}
	return res, true
}

// compositionCmd dispatches the twins and prints the §4 fence-overhead
// comparison when both ran.
func compositionCmd() {
	external := *albumAddr != "" || *photoAddr != "" || *queueAddr != ""
	if external && *fences == "both" {
		// The twins need different daemon configs (the ablation lives in
		// the daemons), and external daemons cannot be reconfigured here.
		fmt.Fprintln(os.Stderr, "composition: external daemons cannot be reconfigured between twins; running -fences=on only (for the reject twin, start the KV daemons with `rsskvd -po-lag=250ms` and run -fences=off)")
		*fences = "on"
	}
	if external && *fences == "off" {
		fmt.Fprintln(os.Stderr, "composition: -fences=off expects the external KV daemons to run the PO ablation (`rsskvd -po-lag`); -po-lag here only sets that expectation (0 = expect a vacuous accept)")
	}
	var onRes, offRes *photoshare.LiveResult
	ok := true
	if *fences == "on" || *fences == "both" {
		var twinOK bool
		onRes, twinOK = runCompoTwin("fences=on", true, 0)
		ok = ok && twinOK
	}
	if *fences == "off" || *fences == "both" {
		var twinOK bool
		offRes, twinOK = runCompoTwin("fences=off", false, *poLag)
		ok = ok && twinOK
	}
	if onRes != nil && offRes != nil {
		tbl := &stats.Table{
			Title:   "§4 fence overhead: fences=on vs fences=off twin",
			Columns: []string{"fences=on", "fences=off", "delta"},
		}
		row := func(name string, on, off float64) { tbl.Add(name, on, off, on-off) }
		row("libRSS fences", float64(onRes.Fences), float64(offRes.Fences))
		row("fences per op", float64(onRes.Fences)/float64(max(onRes.Ops, 1)), 0)
		row("snapshot read p50 us", onRes.ROLatency.Percentile(50), offRes.ROLatency.Percentile(50))
		row("snapshot read p99 us", onRes.ROLatency.Percentile(99), offRes.ROLatency.Percentile(99))
		row("read-write p50 us", onRes.RWLatency.Percentile(50), offRes.RWLatency.Percentile(50))
		row("read-write p99 us", onRes.RWLatency.Percentile(99), offRes.RWLatency.Percentile(99))
		row("queue op p50 us", onRes.QueueLatency.Percentile(50), offRes.QueueLatency.Percentile(50))
		row("queue op p99 us", onRes.QueueLatency.Percentile(99), offRes.QueueLatency.Percentile(99))
		emit(tbl)
		if *poLag > 0 {
			fmt.Fprintln(os.Stderr, "note: the fences=off twin ran under the PO ablation, so its (stale) reads are cheaper than an honest unfenced run; for a pure fence-cost comparison rerun with -fences=off -po-lag=0")
		}
	}
	if !ok {
		os.Exit(1)
	}
}
