package main

// The serve and loadgen modes drive the real serving layer (cmd/rsskvd)
// instead of the simulator: serve runs an in-process rsskvd, and loadgen
// fires concurrent pipelined clients at a server over real sockets,
// records the operation history, and verifies it against the paper's RSS
// checker — live traffic in, checked consistency model out.

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rsskv/internal/core"
	"rsskv/internal/history"
	"rsskv/internal/loadgen"
	"rsskv/internal/server"
	"rsskv/internal/stats"
)

var (
	addr       = flag.String("addr", "", "server address; loadgen: empty starts an in-process server")
	shards     = flag.Int("shards", 8, "shard count for the in-process server")
	clients    = flag.Int("clients", 16, "concurrent client processes")
	ops        = flag.Int("ops", 20000, "total operations across all clients")
	keys       = flag.Int("keys", 512, "keyspace size")
	conns      = flag.Int("conns", 2, "connections per client")
	txnFrac    = flag.Float64("txnfrac", 0.2, "fraction of ops that are read-write transactions")
	multiFrac  = flag.Float64("multifrac", 0.1, "fraction of ops that are batched multi-key ops")
	fenceEvery = flag.Int("fence-every", 0, "insert a fence every N ops per client (0 = never)")
	seed       = flag.Int64("seed", 1, "workload seed")
	noCheck    = flag.Bool("nocheck", false, "skip the RSS history check")
)

// serveCmd runs an in-process rsskvd until interrupted.
func serveCmd() {
	a := *addr
	if a == "" {
		a = ":7365"
	}
	srv := server.New(server.Config{Shards: *shards})
	if err := srv.Start(a); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serving on %s with %d shards (ctrl-c to stop)\n", srv.Addr(), srv.Shards())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	srv.Close()
}

// loadgenCmd drives a live server and checks the recorded history.
func loadgenCmd() {
	target := *addr
	var srv *server.Server
	if target == "" {
		srv = server.New(server.Config{Shards: *shards})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: start server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Fprintf(os.Stderr, "started in-process server on %s (%d shards)\n", target, srv.Shards())
	}

	cfg := loadgen.Config{
		Addr:         target,
		Clients:      *clients,
		OpsPerClient: (*ops + *clients - 1) / *clients,
		Keys:         *keys,
		Conns:        *conns,
		TxnFrac:      *txnFrac,
		MultiFrac:    *multiFrac,
		FenceEvery:   *fenceEvery,
		Seed:         *seed,
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	tbl := &stats.Table{
		Title:   fmt.Sprintf("loadgen: %d clients x %d ops on %s", cfg.Clients, cfg.OpsPerClient, target),
		Columns: []string{"value"},
	}
	tbl.Add("ops completed", float64(res.Ops))
	tbl.Add("wall seconds", res.Elapsed.Seconds())
	tbl.Add("throughput ops/s", res.Throughput())
	tbl.Add("latency p50 us", res.Latency.Percentile(50))
	tbl.Add("latency p99 us", res.Latency.Percentile(99))
	tbl.Add("latency p99.9 us", res.Latency.Percentile(99.9))
	if srv != nil {
		s := srv.Stats()
		tbl.Add("server commits", float64(s.Commits.Load()))
		tbl.Add("server aborts (retried)", float64(s.Aborts.Load()))
	}
	emit(tbl)

	if *noCheck {
		return
	}
	fmt.Fprintf(os.Stderr, "checking %d-op history against RSS...\n", res.H.Len())
	if err := history.Check(res.H, core.RSS); err != nil {
		fmt.Fprintf(os.Stderr, "VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("history is regular-sequential-serializable (RSS): OK")
	if err := history.Check(res.H, core.StrictSerializability); err != nil {
		// Informational: the server aims for strict serializability,
		// which implies RSS; a failure here with RSS passing would
		// point at the fence machinery rather than the lock manager.
		fmt.Fprintf(os.Stderr, "note: strict-serializability check failed: %v\n", err)
	} else {
		fmt.Println("history is strictly serializable: OK")
	}
}
