package main

// The serve and loadgen modes drive the real serving layer (cmd/rsskvd)
// instead of the simulator: serve runs an in-process rsskvd, and loadgen
// fires concurrent pipelined clients at a server over real sockets,
// records the operation history, and verifies it against the paper's RSS
// checker — live traffic in, checked consistency model out. With
// -replicas=N the hosted server puts a replication group under every
// shard and serves snapshot reads from followers bounded by the
// replicated t_safe; with -chaos=<mode> exactly one RSS condition is
// broken and the run succeeds only if the checker rejects the history.

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rsskv/internal/core"
	"rsskv/internal/history"
	"rsskv/internal/kvclient"
	"rsskv/internal/loadgen"
	"rsskv/internal/server"
	"rsskv/internal/stats"
)

var (
	addr       = flag.String("addr", "", "server address; loadgen: empty starts an in-process server")
	shards     = flag.Int("shards", 8, "shard count for the in-process server")
	replicas   = flag.Int("replicas", 1, "copies per shard for the in-process server; >1 serves snapshot reads from followers")
	clients    = flag.Int("clients", 16, "concurrent client processes")
	ops        = flag.Int("ops", 20000, "total operations across all clients")
	keys       = flag.Int("keys", 512, "keyspace size")
	conns      = flag.Int("conns", 2, "connections per client")
	txnFrac    = flag.Float64("txnfrac", 0.2, "fraction of ops that are read-write transactions")
	roFrac     = flag.Float64("rofrac", 0.1, "fraction of ops that are lock-free snapshot read-only transactions")
	multiFrac  = flag.Float64("multifrac", 0.1, "fraction of ops that are batched multi-key ops (the reads are the lock-based baseline)")
	fenceEvery = flag.Int("fence-every", 0, "insert a fence every N ops per client (0 = never)")
	seed       = flag.Int64("seed", 1, "workload seed")
	noCheck    = flag.Bool("nocheck", false, "skip the RSS history check")
	expectFoll = flag.Bool("expect-follower", false, "fail unless some snapshot reads were served entirely by follower replicas (smoke-testing replicated serving, in-process or external -mode=replica processes)")
	epsilon    = flag.Duration("eps", 0, "hosted server's TrueTime uncertainty bound ε")
	commitEst  = flag.Duration("commit-est", 0, "hosted server's t_ee estimate; >0 lets snapshot reads skip concurrent preparers (§5) at the cost of delaying commit responses until the estimate passes")
	chaos      = flag.String("chaos", "", "fault injection for the hosted server: stale-reads | delayed-applies | dropped-lock-release | lost-commit-wait (the run succeeds only if the RSS check rejects)")
	metricsOut = flag.String("metrics-out", "", "loadgen: scrape the server's metrics after the run, render the per-stage dashboard, and write the JSON document here (- for stdout)")
	extraAddrs = flag.String("scrape-addrs", "", "loadgen: extra daemon addresses (replica read listeners, queue daemons) to include in the end-of-run scrape")
	targetQPS  = flag.Float64("target-qps", 0, "loadgen: open-loop mode — offer this many Poisson-scheduled retwis/zipf transactions per second instead of the closed-loop mix (latency measured from scheduled arrival; overflow arrivals are dropped, not queued)")
	qpsSweep   = flag.String("qps-sweep", "", "loadgen: comma-separated target-QPS points, e.g. 1000,2000,4000 — run an open-loop point at each and print the latency-under-throughput curve (implies open-loop; each point gets its own key namespace and RSS check)")
	zipfTheta  = flag.Float64("zipf-theta", 0.75, "open-loop: Zipfian key-popularity skew in (0,1); 0 = uniform")
	inFlight   = flag.Int("inflight", 64, "open-loop: max concurrent operations (each slot is one client session; arrivals beyond it are dropped)")
	pointDur   = flag.Duration("point-dur", 5*time.Second, "open-loop: arrival-generation window per load point")
	dataDir    = flag.String("data-dir", "", "in-process server: write per-shard WALs and checkpoints under this directory (empty = no durability)")
	ckptBytes  = flag.Int64("ckpt-bytes", 0, "in-process server: checkpoint after this many WAL bytes per shard (0 = server default)")
	record     = flag.String("record", "", "loadgen: write the recorded history to this JSON file (for a later checkhist merge across a server crash)")
	timeBase   = flag.Int64("time-base", 0, "loadgen: unix-nanosecond epoch all recorded instants are measured from (0 = now); runs merged by checkhist must share one")
	clientBase = flag.Int("client-base", 0, "loadgen: offset client IDs and written values by this base; runs merged by checkhist must use disjoint ranges")
	keyPrefix  = flag.String("key-prefix", "", "loadgen: key namespace (empty = fresh nonce); runs merged by checkhist must share one")
	tolerate   = flag.Bool("tolerate-errors", false, "loadgen: record failed operations as pending instead of failing the run (crash testing)")
	contErr    = flag.Bool("continue-on-error", false, "loadgen: with -tolerate-errors, keep each client's stream running across errors instead of ending it (failover runs: failed ops are recorded pending and the client redirects via -fallbacks)")
	fallbacks  = flag.String("fallbacks", "", "loadgen: comma-separated view-service addresses (rsskvd -mode=replica read listeners) clients query for the current leader after NotLeader redirects or connection loss")
	applyBatch = flag.Int("apply-batch", 0, "in-process server: max closures per shard apply-loop drain (0 = default 64; negative clamps to 1, the entry-at-a-time pipeline)")
	admitQPS   = flag.Float64("admit-qps", 0, "in-process server: admission-control throughput cap in ops/s, split over shards; excess arrivals are delayed then rejected with a retry hint (0 = admission disabled)")
	admitQueue = flag.Int("admit-queue", 0, "in-process server: per-shard admission delay-queue bound; overflow rejects immediately (0 = default 64)")
	admitDeadl = flag.Duration("admit-deadline", 0, "in-process server: longest a delayed arrival waits for admission before rejection (0 = default 5ms)")
)

// serverConfig assembles the hosted server's Config from the flags,
// including the chaos mode and its observability prerequisites.
func serverConfig() server.Config {
	cfg := server.Config{
		Shards:          *shards,
		Replicas:        *replicas,
		Epsilon:         *epsilon,
		CommitEstimate:  *commitEst,
		DataDir:         *dataDir,
		CheckpointBytes: *ckptBytes,
		ApplyBatchMax:   *applyBatch,
		AdmitQPS:        *admitQPS,
		AdmitQueue:      *admitQueue,
		AdmitDeadline:   *admitDeadl,
	}
	warn := func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	if err := cfg.ApplyChaosMode(*chaos, warn); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return cfg
}

// serveCmd runs an in-process rsskvd until interrupted.
func serveCmd() {
	cfg := serverConfig()
	a := *addr
	if a == "" {
		a = ":7365"
	}
	srv, err := server.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	reportRecovery(srv)
	if err := srv.Start(a); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serving on %s with %d shards x %d replicas (ctrl-c to stop)\n",
		srv.Addr(), srv.Shards(), srv.Replicas())
	if *chaos != "" {
		fmt.Fprintf(os.Stderr, "CHAOS MODE %q: recorded histories will violate RSS\n", *chaos)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	srv.Close()
}

// loadgenCmd drives a live server and checks the recorded history. With
// -chaos the expectation inverts: the in-process server is deliberately
// broken, so the run succeeds only if the checker rejects.
func loadgenCmd() {
	if (*qpsSweep != "" || *targetQPS > 0) && *chaos != "" {
		// Open-loop is the performance-measurement mode; the falsifiability
		// matrix (chaos must be rejected) stays on the closed-loop path
		// where every op completes and the history covers the whole run.
		fmt.Fprintln(os.Stderr, "loadgen: -chaos cannot be combined with open-loop mode (-target-qps/-qps-sweep); use the closed-loop flags for the chaos matrix")
		os.Exit(2)
	}
	cfg := serverConfig()
	target := *addr
	var srv *server.Server
	if target == "" {
		var err error
		srv, err = server.Open(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: open server: %v\n", err)
			os.Exit(1)
		}
		reportRecovery(srv)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: start server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Fprintf(os.Stderr, "started in-process server on %s (%d shards x %d replicas)\n",
			target, srv.Shards(), srv.Replicas())
	} else if *chaos != "" {
		fmt.Fprintln(os.Stderr, "loadgen: -chaos injects the fault into the in-process server; it cannot break a remote -addr server (start `rsskvd -chaos` or `rssbench serve -chaos` instead)")
		os.Exit(2)
	}

	if *qpsSweep != "" || *targetQPS > 0 {
		openLoopCmd(target)
		return
	}

	lcfg := loadgen.Config{
		Addr:            target,
		Clients:         *clients,
		OpsPerClient:    (*ops + *clients - 1) / *clients,
		Keys:            *keys,
		KeyPrefix:       *keyPrefix,
		Conns:           *conns,
		TxnFrac:         *txnFrac,
		ROFrac:          *roFrac,
		MultiFrac:       *multiFrac,
		FenceEvery:      *fenceEvery,
		Seed:            *seed,
		ClientBase:      *clientBase,
		TolerateErrors:  *tolerate,
		ContinueOnError: *contErr,
	}
	if *fallbacks != "" {
		lcfg.Fallbacks = strings.Split(*fallbacks, ",")
	}
	if *timeBase != 0 {
		lcfg.Start = time.Unix(0, *timeBase)
	}
	res, err := loadgen.Run(lcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d operations recorded as pending (tolerated errors)\n", res.Errors)
	}
	if res.Rejects > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d operations rejected by admission control (shed, absent from the history)\n", res.Rejects)
	}
	var failover *failoverSummary
	if res.FirstError > 0 && res.Recovered > 0 {
		failover = &failoverSummary{
			FirstErrorNS: int64(res.FirstError),
			RecoveredNS:  int64(res.Recovered),
			MTTRNS:       int64(res.Recovered - res.FirstError),
			PendingOps:   res.Errors,
			Ops:          res.Ops,
			FollowerROs:  res.FollowerROs,
		}
		fmt.Fprintf(os.Stderr, "loadgen: rode out an outage: client-observed MTTR %v (first swallowed op at +%v, last failed client served again at +%v, %d ops pending)\n",
			time.Duration(failover.MTTRNS), time.Duration(failover.FirstErrorNS), time.Duration(failover.RecoveredNS), res.Errors)
	}
	if *record != "" {
		if err := history.Save(res.H, *record); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: record history: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "recorded %d-op history to %s\n", res.H.Len(), *record)
	}
	if *expectFoll && res.FollowerROs == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -expect-follower set but no snapshot read was served entirely by follower replicas (are replicas attached and -rofrac > 0?)")
		os.Exit(1)
	}

	tbl := &stats.Table{
		Title:   fmt.Sprintf("loadgen: %d clients x %d ops on %s", lcfg.Clients, lcfg.OpsPerClient, target),
		Columns: []string{"value"},
	}
	tbl.Add("ops completed", float64(res.Ops))
	tbl.Add("wall seconds", res.Elapsed.Seconds())
	tbl.Add("throughput ops/s", res.Throughput())
	tbl.Add("latency p50 us", res.Latency.Percentile(50))
	tbl.Add("latency p99 us", res.Latency.Percentile(99))
	tbl.Add("latency p99.9 us", res.Latency.Percentile(99.9))
	if res.ROLatency.N() > 0 {
		tbl.Add("ro-txn (snapshot) p50 us", res.ROLatency.Percentile(50))
		tbl.Add("ro-txn (snapshot) p99 us", res.ROLatency.Percentile(99))
	}
	if res.FollowerROLatency.N() > 0 {
		tbl.Add("ro-txn follower-served", float64(res.FollowerROs))
		tbl.Add("ro-txn (follower) p50 us", res.FollowerROLatency.Percentile(50))
		tbl.Add("ro-txn (follower) p99 us", res.FollowerROLatency.Percentile(99))
	}
	if res.MultiGetLatency.N() > 0 {
		tbl.Add("multiget (locked) p50 us", res.MultiGetLatency.Percentile(50))
		tbl.Add("multiget (locked) p99 us", res.MultiGetLatency.Percentile(99))
	}
	if res.RWLatency.N() > 0 {
		tbl.Add("read-write p50 us", res.RWLatency.Percentile(50))
		tbl.Add("read-write p99 us", res.RWLatency.Percentile(99))
	}
	if srv != nil {
		s := srv.Stats()
		tbl.Add("server commits", float64(s.Commits.Load()))
		tbl.Add("server aborts (retried)", float64(s.Aborts.Load()))
		tbl.Add("server ro-txns", float64(s.ROs.Load()))
		tbl.Add("server ro blocked on prepares", float64(s.ROBlocked.Load()))
		tbl.Add("server ro prepares skipped", float64(s.ROSkips.Load()))
		if srv.Replicas() > 1 {
			tbl.Add("server ro follower portions", float64(s.ROFollower.Load()))
			tbl.Add("server ro leader fallbacks", float64(s.ROFallback.Load()))
		}
		if *admitQPS > 0 {
			tbl.Add("server admission rejects", float64(s.AdmitRejects.Load()))
			tbl.Add("server admission delays", float64(s.AdmitDelayed.Load()))
		}
	}
	emit(tbl)

	// End-of-run scrape: pull the metrics registries of the target plus any
	// -scrape-addrs processes (external replicas, queue daemons) while they
	// are still alive, render the per-stage dashboard, and persist the JSON
	// document. Scrape failures are fatal — a loadgen run asked to record
	// its observability baseline must actually record it.
	if *metricsOut != "" || *extraAddrs != "" {
		var addrs []string
		if failover == nil {
			addrs = []string{target}
		} else {
			// The run rode out its target's death; the live processes to
			// scrape (the promoted leader, the view service) come via
			// -scrape-addrs.
			fmt.Fprintf(os.Stderr, "loadgen: skipping scrape of %s (died mid-run)\n", target)
		}
		if *extraAddrs != "" {
			addrs = append(addrs, strings.Split(*extraAddrs, ",")...)
		}
		if len(addrs) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: nothing left to scrape (failover run without -scrape-addrs)")
			os.Exit(1)
		}
		sources, err := scrapeAll(addrs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		doc := buildMetricsDoc(sources)
		doc.Failover = failover
		renderMetrics(doc, *plot)
		if *metricsOut != "" {
			if err := writeMetricsJSON(*metricsOut, doc); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: write metrics json: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *noCheck {
		return
	}
	if res.Errors > 0 {
		// Tolerated errors leave pending writes whose commit timestamps
		// died with their connections; seat the observed ones before the
		// checker sorts version chains.
		if err := history.RepairPendingVersions(res.H); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "checking %d-op history against RSS...\n", res.H.Len())
	checkErr := history.Check(res.H, core.RSS)
	if *chaos != "" {
		if checkErr == nil {
			fmt.Fprintf(os.Stderr, "chaos %q ran but the RSS checker accepted the history; the fault was not observable (try more ops or a higher -rofrac)\n", *chaos)
			os.Exit(1)
		}
		fmt.Printf("chaos %q confirmed: RSS checker rejected the history\n  %v\n", *chaos, checkErr)
		return
	}
	if checkErr != nil {
		fmt.Fprintf(os.Stderr, "VIOLATION: %v\n", checkErr)
		os.Exit(1)
	}
	fmt.Println("history is regular-sequential-serializable (RSS): OK")
	if err := history.Check(res.H, core.StrictSerializability); err != nil {
		// Informational: on a single server the snapshot-read timestamp
		// is drawn against one clock, so even the RO path is externally
		// consistent; a failure here with RSS passing points at the
		// fence or t_min machinery rather than the lock manager.
		fmt.Fprintf(os.Stderr, "note: strict-serializability check failed: %v\n", err)
	} else {
		fmt.Println("history is strictly serializable: OK")
	}
}

// reportRecovery logs what a durable server's replay found, so restart
// logs show the recovered state instead of a silent fresh-looking boot.
func reportRecovery(srv *server.Server) {
	rec := srv.Recovery()
	if rec.Records == 0 && rec.Checkpoints == 0 && rec.PreparesRestored == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"recovered: %d checkpoints, %d log records, %d torn tails; %d dangling prepares (%d committed, %d aborted)\n",
		rec.Checkpoints, rec.Records, rec.TornTails,
		rec.PreparesRestored, rec.PreparesCommitted, rec.PreparesAborted)
}

// checkhistCmd merges recorded history files — typically one per server
// incarnation across a crash — repairs pending writes from their read
// witnesses, and runs the RSS checker over the merged whole. This is the
// offline half of the kill -9 test: the recording processes died with the
// server, but the files they left must still compose into one history the
// paper's definitions accept.
func checkhistCmd() {
	// main re-parses the args after the command name, so flag.Args() is
	// the file list — unless there were none and no re-parse happened, in
	// which case it is still ["checkhist"].
	files := flag.Args()
	if len(files) > 0 && files[0] == "checkhist" {
		files = files[1:]
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "checkhist: usage: rssbench checkhist <history.json> [more.json ...]")
		os.Exit(2)
	}
	var hs []*history.History
	total := 0
	for _, f := range files {
		h, err := history.Load(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkhist: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d ops\n", f, h.Len())
		total += h.Len()
		hs = append(hs, h)
	}
	merged := history.Merge(hs...)
	if err := history.RepairPendingVersions(merged); err != nil {
		fmt.Fprintf(os.Stderr, "checkhist: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "checking merged %d-op history against RSS...\n", total)
	if err := history.Check(merged, core.RSS); err != nil {
		fmt.Fprintf(os.Stderr, "VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("merged history (%d files, %d ops) is regular-sequential-serializable (RSS): OK\n", len(files), total)
}

// promoteCmd orders the replica at -addr (its read listener) to take over
// leadership of its shard group, printing the view it installs. It is the
// explicit-trigger half of failover — the CI split-brain twin uses it to
// promote while the old leader is still alive, where the lease watcher
// (-promote-after) would never fire.
func promoteCmd() {
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "promote: -addr=<replica read listener> is required")
		os.Exit(2)
	}
	epoch, leader, err := kvclient.Promote(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promote: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("promoted: epoch %d, leader %s\n", epoch, leader)
}

// sweepPoints parses the open-loop load points: -qps-sweep's list, or the
// single -target-qps.
func sweepPoints() []float64 {
	if *qpsSweep == "" {
		return []float64{*targetQPS}
	}
	var pts []float64
	for _, f := range strings.Split(*qpsSweep, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || q <= 0 {
			fmt.Fprintf(os.Stderr, "loadgen: bad -qps-sweep point %q (want a positive rate)\n", f)
			os.Exit(2)
		}
		pts = append(pts, q)
	}
	return pts
}

// openLoopCmd runs the open-loop path: one Poisson-arrival load point per
// sweep entry against the (possibly in-process) server, RSS-checking each
// point's history and printing the latency-under-throughput curve.
// Latency percentiles are measured from each arrival's *scheduled*
// instant, so they degrade honestly as the offered rate passes what the
// server sustains instead of the closed-loop generator quietly slowing
// down with it.
func openLoopCmd(target string) {
	points := sweepPoints()
	var rows []sweepPoint
	followerROs := 0
	for _, q := range points {
		ocfg := loadgen.OpenConfig{
			Addr:           target,
			TargetQPS:      q,
			Duration:       *pointDur,
			MaxInFlight:    *inFlight,
			Keys:           *keys,
			ZipfTheta:      *zipfTheta,
			Conns:          *conns,
			Seed:           *seed,
			TolerateErrors: *tolerate,
			// KeyPrefix left empty: each point gets a fresh nonce namespace
			// so its checked history never reads a prior point's writes.
		}
		fmt.Fprintf(os.Stderr, "open-loop point: target %.0f qps for %s (retwis mix, zipf theta %.2f, %d keys, %d in-flight)\n",
			q, *pointDur, *zipfTheta, *keys, *inFlight)
		res, err := loadgen.RunOpen(ocfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: open-loop point %.0f qps: %v\n", q, err)
			os.Exit(1)
		}
		followerROs += res.FollowerROs
		// The sweep table is also where the accounting invariant is
		// enforced: a point whose buckets do not sum back to its offered
		// arrivals is reporting a curve over silently leaked load.
		if res.Offered != res.Ops+res.Drops+res.Errors+res.Rejects {
			fmt.Fprintf(os.Stderr, "loadgen: point %.0f qps leaks arrivals: offered=%d ops=%d drops=%d errors=%d rejects=%d\n",
				q, res.Offered, res.Ops, res.Drops, res.Errors, res.Rejects)
			os.Exit(1)
		}
		rows = append(rows, sweepPoint{
			TargetQPS:   q,
			AchievedQPS: res.Throughput(),
			Offered:     res.Offered,
			Ops:         res.Ops,
			Drops:       res.Drops,
			Errors:      res.Errors,
			Rejects:     res.Rejects,
			P50us:       res.Latency.Percentile(50),
			P95us:       res.Latency.Percentile(95),
			P99us:       res.Latency.Percentile(99),
			ROP99us:     res.ROLatency.Percentile(99),
			RWP99us:     res.RWLatency.Percentile(99),
		})
		if !*noCheck {
			if res.Errors > 0 {
				// Tolerated errors leave pending writes whose commit
				// timestamps died with their connections; seat the observed
				// ones before the checker sorts version chains.
				if err := history.RepairPendingVersions(res.H); err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
					os.Exit(1)
				}
			}
			fmt.Fprintf(os.Stderr, "checking %d-op history against RSS...\n", res.H.Len())
			if err := history.Check(res.H, core.RSS); err != nil {
				fmt.Fprintf(os.Stderr, "VIOLATION at %.0f qps: %v\n", q, err)
				os.Exit(1)
			}
		}
	}
	if *expectFoll && followerROs == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -expect-follower set but no snapshot read was served entirely by follower replicas (are replicas attached?)")
		os.Exit(1)
	}

	tbl := &stats.Table{
		Title:   fmt.Sprintf("open-loop sweep on %s (latency us from scheduled arrival)", target),
		Columns: []string{"achieved", "offered", "ops", "drops", "errors", "rejects", "p50", "p95", "p99", "ro p99", "rw p99"},
	}
	for _, r := range rows {
		tbl.Add(fmt.Sprintf("%.0f qps", r.TargetQPS),
			r.AchievedQPS, float64(r.Offered), float64(r.Ops), float64(r.Drops),
			float64(r.Errors), float64(r.Rejects),
			r.P50us, r.P95us, r.P99us, r.ROP99us, r.RWP99us)
	}
	emit(tbl)
	if !*noCheck {
		fmt.Printf("all %d open-loop points regular-sequential-serializable (RSS): OK\n", len(rows))
	}

	if *metricsOut != "" || *extraAddrs != "" {
		addrs := []string{target}
		if *extraAddrs != "" {
			addrs = append(addrs, strings.Split(*extraAddrs, ",")...)
		}
		sources, err := scrapeAll(addrs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		doc := buildMetricsDoc(sources)
		doc.Sweep = rows
		renderMetrics(doc, *plot)
		if *metricsOut != "" {
			if err := writeMetricsJSON(*metricsOut, doc); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: write metrics json: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
