package main

import (
	"testing"

	"rsskv/internal/wire"
)

// TestHistNonEmpty pins the -require gate's emptiness test: a histogram
// satisfies the gate only when it carries a nonzero count AND nonzero
// bucket occupancy. The all-zero-buckets case is the regression — a gate
// that accepted it would pass vacuously on instrumentation that exists
// but never fired.
func TestHistNonEmpty(t *testing.T) {
	cases := []struct {
		name string
		h    wire.MetricHist
		want bool
	}{
		{"empty", wire.MetricHist{Name: "h"}, false},
		{"count without buckets", wire.MetricHist{Name: "h", Count: 3}, false},
		{"all-zero buckets", wire.MetricHist{Name: "h", Count: 3,
			Buckets: []wire.MetricBucket{{Idx: 4, N: 0}, {Idx: 9, N: 0}}}, false},
		{"buckets without count", wire.MetricHist{Name: "h",
			Buckets: []wire.MetricBucket{{Idx: 4, N: 2}}}, false},
		{"recorded samples", wire.MetricHist{Name: "h", Count: 2,
			Buckets: []wire.MetricBucket{{Idx: 4, N: 2}}}, true},
	}
	for _, c := range cases {
		if got := histNonEmpty(c.h); got != c.want {
			t.Errorf("%s: histNonEmpty = %v, want %v", c.name, got, c.want)
		}
	}
}
