// Command rssbench regenerates the tables and figures from the paper's
// evaluation (§6, §7) on the simulated substrate. See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	rssbench [-quick] [-csv] <experiment> [flags]
//
// Experiments:
//
//	fig5      Spanner vs Spanner-RSS RO tail latency (-skew 0.5|0.7|0.9|all)
//	fig6      Spanner vs Spanner-RSS peak-load throughput/latency
//	fig7      Gryff vs Gryff-RSC p99 read latency (-conflict 2|10|25|all)
//	fig7tail  §7.3 p99.9 read latency spot check
//	overhead  §7.4 Gryff vs Gryff-RSC without WAN emulation
//	table1    photo-share invariant/anomaly matrix
//	table2    emulated RTT matrix
//	ablation  §6 optimizations ablated (repo extension, not a paper figure)
//	all       everything above except the ablation
//
// Serving-layer modes (real sockets, not the simulator):
//
//	serve     run an in-process rsskvd (-addr, -shards)
//	loadgen   drive a server with concurrent pipelined clients, record
//	          the history, and verify it is RSS (-addr, -clients, -ops,
//	          -keys, -txnfrac, -multifrac, -fence-every, -seed;
//	          -expect-follower fails the run unless follower replicas —
//	          in-process or external -mode=replica processes — served
//	          snapshot reads; -metrics-out scrapes the target after the
//	          run — plus any -scrape-addrs daemons — renders the merged
//	          per-stage dashboard, and writes the JSON document)
//	checkhist merge recorded history JSON files (rssbench loadgen -record,
//	          one per server incarnation across a crash), repair pending
//	          writes from read witnesses, and verify the merged history
//	          is RSS — the offline half of the kill -9 durability test
//	composition
//	          the live §4 experiment: photo-share across two rsskvd
//	          daemons plus the socketed queue behind libRSS fences, the
//	          merged history checked against RSS; -fences=both also runs
//	          the fences-off PO-ablation twin, which the checker must
//	          reject (-album-addr, -photo-addr, -queue-addr, -adders,
//	          -viewers, -photos, -probes, -po-lag)
//	metrics   scrape the OpMetrics registries of live daemons (kv leaders,
//	          -mode=replica read listeners, queue daemons) and render a
//	          merged per-stage dashboard (-addrs, -metrics-json, -require,
//	          -plot draws bucket occupancy bars); -require fails the run
//	          when a named histogram is empty, the CI smoke gate
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rsskv/internal/exp"
	"rsskv/internal/stats"
)

var (
	quick    = flag.Bool("quick", false, "shrink durations for a fast pass")
	csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	plot     = flag.Bool("plot", false, "also draw ASCII plots (fig5 tail CDFs, metrics bucket bars)")
	skew     = flag.String("skew", "all", "fig5 Zipfian skew: 0.5, 0.7, 0.9, or all")
	conflict = flag.String("conflict", "all", "fig7 conflict percentage: 2, 10, 25, or all")
)

func emit(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func timed(name string, f func()) {
	start := time.Now()
	f()
	fmt.Fprintf(os.Stderr, "[%s took %.1fs wall]\n", name, time.Since(start).Seconds())
}

func fig5() {
	skews := map[string][]float64{
		"0.5": {0.5}, "0.7": {0.7}, "0.9": {0.9}, "all": {0.5, 0.7, 0.9},
	}[*skew]
	if skews == nil {
		fmt.Fprintf(os.Stderr, "unknown -skew %q\n", *skew)
		os.Exit(2)
	}
	for _, s := range skews {
		timed(fmt.Sprintf("fig5 skew %.1f", s), func() {
			t, base, rss := exp.Fig5(exp.DefaultFig5(s, *quick))
			emit(t)
			if *plot {
				fmt.Println(stats.PlotTailCDF(
					fmt.Sprintf("RO latency tail CDF, skew %.1f", s), 70,
					stats.Series{Name: "spanner", Sample: &base.RO},
					stats.Series{Name: "spanner-rss", Sample: &rss.RO}))
			}
		})
	}
}

func fig7() {
	confs := map[string][]float64{
		"2": {2}, "10": {10}, "25": {25}, "all": {2, 10, 25},
	}[*conflict]
	if confs == nil {
		fmt.Fprintf(os.Stderr, "unknown -conflict %q\n", *conflict)
		os.Exit(2)
	}
	for _, c := range confs {
		timed(fmt.Sprintf("fig7 %.0f%% conflicts", c), func() {
			emit(exp.Fig7(exp.DefaultFig7(c, *quick)))
		})
	}
}

func main() {
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 1 {
		// Accept flags after the experiment name too.
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
	}
	switch cmd {
	case "fig5":
		fig5()
	case "fig6":
		timed("fig6", func() { emit(exp.Fig6(exp.DefaultFig6(*quick))) })
	case "fig7":
		fig7()
	case "fig7tail":
		timed("fig7tail", func() { emit(exp.Fig7Tail(*quick)) })
	case "overhead":
		timed("overhead", func() {
			cfg := exp.DefaultOverhead(*quick)
			emit(exp.Overhead(cfg, 0.5))  // YCSB-A
			emit(exp.Overhead(cfg, 0.05)) // YCSB-B
		})
	case "table1":
		timed("table1", func() { emit(exp.Table1(exp.DefaultTable1(*quick))) })
	case "table2":
		emit(exp.Table2())
	case "ablation":
		timed("ablation", func() { emit(exp.Ablation(exp.DefaultFig5(0.9, *quick))) })
	case "serve":
		serveCmd()
	case "loadgen":
		timed("loadgen", loadgenCmd)
	case "composition":
		timed("composition", compositionCmd)
	case "checkhist":
		checkhistCmd()
	case "metrics":
		metricsCmd()
	case "promote":
		promoteCmd()
	case "all":
		emit(exp.Table2())
		timed("table1", func() { emit(exp.Table1(exp.DefaultTable1(*quick))) })
		fig5()
		timed("fig6", func() { emit(exp.Fig6(exp.DefaultFig6(*quick))) })
		fig7()
		timed("fig7tail", func() { emit(exp.Fig7Tail(*quick)) })
		timed("overhead", func() {
			cfg := exp.DefaultOverhead(*quick)
			emit(exp.Overhead(cfg, 0.5))
			emit(exp.Overhead(cfg, 0.05))
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		os.Exit(2)
	}
}
