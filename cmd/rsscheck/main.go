// Command rsscheck runs randomized consistency validation sweeps: it
// drives each system under contended workloads across many seeds, records
// every operation, and checks the histories against the paper's
// consistency models using internal/history (the executable form of the
// paper's Appendix D proofs).
//
//	rsscheck [-seeds N] [-clients N] [-ops N] [system]
//
// Systems: gryff, gryff-rsc, spanner, spanner-rss, spanner-po, all.
//
// Expected results: gryff passes linearizability; gryff-rsc passes RSC
// (and is *allowed* to fail linearizability); spanner passes strict
// serializability; spanner-rss passes RSS; spanner-po passes
// PO-serializability. Any reported violation is a bug in the protocols,
// the simulator, or the checker — this is the tool that caught a missing
// rmw write-back round during development.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rsskv/internal/core"
	"rsskv/internal/gryff"
	"rsskv/internal/history"
	"rsskv/internal/sim"
	"rsskv/internal/spanner"
	"rsskv/internal/workload"
)

var (
	seeds   = flag.Int("seeds", 20, "number of independent runs per system")
	clients = flag.Int("clients", 10, "clients per run")
	ops     = flag.Int("ops", 40, "operations (transactions) per client")
)

func main() {
	flag.Parse()
	target := flag.Arg(0)
	if target == "" {
		target = "all"
	}
	failures := 0
	run := func(name string, f func(seed int64) error) {
		if target != "all" && target != name {
			return
		}
		bad := 0
		for s := int64(1); s <= int64(*seeds); s++ {
			if err := f(s); err != nil {
				bad++
				fmt.Printf("%-12s seed %-3d FAIL: %v\n", name, s, err)
			}
		}
		if bad == 0 {
			fmt.Printf("%-12s %d seeds OK\n", name, *seeds)
		}
		failures += bad
	}

	run("gryff", func(seed int64) error {
		return checkGryff(seed, gryff.ModeLinearizable, core.Linearizability)
	})
	run("gryff-rsc", func(seed int64) error {
		return checkGryff(seed, gryff.ModeRSC, core.RSC)
	})
	run("spanner", func(seed int64) error {
		return checkSpanner(seed, spanner.ModeStrict, core.StrictSerializability)
	})
	run("spanner-rss", func(seed int64) error {
		return checkSpanner(seed, spanner.ModeRSS, core.RSS)
	})
	run("spanner-po", func(seed int64) error {
		return checkSpanner(seed, spanner.ModePO, core.POSerializability)
	})
	if failures > 0 {
		fmt.Printf("\n%d violations found\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall histories satisfied their models")
}

// gryffChecker drives one random register client and records its history.
type gryffChecker struct {
	c    *gryff.Client
	rec  *history.Recorder
	keys []string
	left int
	done *int
}

func (g *gryffChecker) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	g.c.Recv(ctx, from, msg)
}

func (g *gryffChecker) Init(ctx *sim.Context) { g.next(ctx) }

func (g *gryffChecker) next(ctx *sim.Context) {
	if g.left == 0 {
		*g.done++
		return
	}
	g.left--
	key := g.keys[ctx.Rand().Intn(len(g.keys))]
	r := ctx.Rand().Float64()
	switch {
	case r < 0.10:
		op := g.rec.NewOp(int(g.c.ID), core.RMW, ctx.Now())
		arg := "+" + g.rec.UniqueValue()
		g.c.RMW(ctx, key, gryff.FnAppend, arg, func(ctx *sim.Context, res gryff.RMWResult) {
			op.Reads = map[string]string{key: res.Base}
			op.Writes = map[string]string{key: res.Value}
			op.Version = res.CS.Rank()
			g.rec.Done(op, ctx.Now())
			g.next(ctx)
		})
	case r < 0.5:
		op := g.rec.NewOp(int(g.c.ID), core.Write, ctx.Now())
		op.Key, op.Value = key, g.rec.UniqueValue()
		g.c.Write(ctx, key, op.Value, func(ctx *sim.Context, res gryff.WriteResult) {
			op.Version = res.CS.Rank()
			g.rec.Done(op, ctx.Now())
			g.next(ctx)
		})
	default:
		op := g.rec.NewOp(int(g.c.ID), core.Read, ctx.Now())
		op.Key = key
		g.c.Read(ctx, key, func(ctx *sim.Context, res gryff.ReadResult) {
			op.Value = res.Value
			op.Version = res.CS.Rank()
			g.rec.Done(op, ctx.Now())
			g.next(ctx)
		})
	}
}

func checkGryff(seed int64, mode gryff.Mode, model core.Model) error {
	net := sim.Topology5Region()
	net.JitterMean = sim.Ms(1)
	w := sim.NewWorld(net, seed)
	cl := gryff.NewCluster(w, net, gryff.Config{Regions: []sim.RegionID{0, 1, 2, 3, 4}})
	rec := history.NewRecorder()
	done := 0
	for i := 0; i < *clients; i++ {
		reg := sim.RegionID(i % 5)
		g := &gryffChecker{
			c:    cl.NewClient(uint32(i+1), reg, mode),
			rec:  rec,
			keys: []string{"hot", "k1", "k2"},
			left: *ops,
			done: &done,
		}
		w.AddNode(g, reg)
	}
	if !w.RunUntil(func() bool { return done == *clients }, 3600*sim.Second) {
		return fmt.Errorf("run stuck at %d/%d clients", done, *clients)
	}
	return history.Check(&rec.H, model)
}

// spannerChecker drives random Retwis transactions and records them.
type spannerChecker struct {
	c    *spanner.Client
	rec  *history.Recorder
	gen  *workload.Retwis
	left int
	done *int
}

func (d *spannerChecker) Recv(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	d.c.Recv(ctx, from, msg)
}

func (d *spannerChecker) Init(ctx *sim.Context) { d.next(ctx) }

func (d *spannerChecker) next(ctx *sim.Context) {
	if d.left == 0 {
		*d.done++
		return
	}
	d.left--
	txn := d.gen.Next(ctx.Rand())
	if txn.IsReadOnly() {
		op := d.rec.NewOp(int(d.c.ID), core.ROTxn, ctx.Now())
		d.c.ReadOnly(ctx, txn.ReadKeys, func(ctx *sim.Context, r spanner.ROResult) {
			op.Reads = map[string]string{}
			for k, v := range r.Vals {
				op.Reads[k] = v
			}
			op.Version = int64(r.TSnap)
			d.rec.Done(op, ctx.Now())
			d.next(ctx)
		})
		return
	}
	op := d.rec.NewOp(int(d.c.ID), core.RWTxn, ctx.Now())
	wmap := map[string]string{}
	writes := make([]spanner.KV, 0, len(txn.WriteKeys))
	for _, k := range txn.WriteKeys {
		v := d.rec.UniqueValue()
		wmap[k] = v
		writes = append(writes, spanner.KV{Key: k, Value: v})
	}
	d.c.ReadWrite(ctx, txn.ReadKeys, writes, func(ctx *sim.Context, r spanner.RWResult) {
		op.Reads = map[string]string{}
		for k, v := range r.Reads {
			if wmap[k] == "" || v != wmap[k] {
				op.Reads[k] = v
			}
		}
		op.Writes = wmap
		op.Version = int64(r.TC)
		d.rec.Done(op, ctx.Now())
		d.next(ctx)
	})
}

func checkSpanner(seed int64, mode spanner.Mode, model core.Model) error {
	net := sim.Topology3DC()
	net.JitterMean = sim.Ms(1)
	w := sim.NewWorld(net, seed)
	cl := spanner.NewCluster(w, net, spanner.Config{
		Mode:          mode,
		NumShards:     3,
		LeaderRegions: []sim.RegionID{0, 1, 2},
		ReplicaRegions: [][]sim.RegionID{
			{1, 2}, {0, 2}, {0, 1},
		},
		Epsilon: sim.Ms(10),
	})
	rec := history.NewRecorder()
	gen := workload.NewRetwis(workload.NewUniform(12))
	done := 0
	for i := 0; i < *clients; i++ {
		reg := sim.RegionID(i % 3)
		d := &spannerChecker{
			c:    cl.NewClient(reg, rand.New(rand.NewSource(seed*1000+int64(i)))),
			rec:  rec,
			gen:  gen,
			left: *ops,
			done: &done,
		}
		w.AddNode(d, reg)
	}
	if !w.RunUntil(func() bool { return done == *clients }, 3600*sim.Second) {
		return fmt.Errorf("run stuck at %d/%d clients", done, *clients)
	}
	return history.Check(&rec.H, model)
}
