// Command rsskvd is the networked RSS key-value daemon: a sharded,
// strictly serializable (hence RSS) key-value server speaking the wire
// protocol of internal/wire. Drive it with internal/kvclient or
// `rssbench loadgen`, which also verifies recorded histories with the
// paper's checker.
//
// Usage:
//
//	rsskvd [-addr :7365] [-shards 8] [-stats 10s] [-chaos stale-reads]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsskv/internal/server"
)

var (
	addr      = flag.String("addr", ":7365", "listen address")
	shards    = flag.Int("shards", 8, "number of keyspace shards")
	maxFrame  = flag.Int("maxframe", 0, "max accepted frame size in bytes (0 = default 1 MiB)")
	statsEvy  = flag.Duration("stats", 10*time.Second, "stats logging interval (0 disables)")
	epsilon   = flag.Duration("eps", 0, "TrueTime uncertainty bound ε (adds ~2ε commit wait per mutation)")
	commitEst = flag.Duration("commit-est", 0, "advertised earliest-end-time estimate t_ee for commits; >0 lets snapshot reads skip concurrent preparers (§5) at the cost of delaying commit responses until the estimate passes")
	chaos     = flag.String("chaos", "", "fault injection; 'stale-reads' serves snapshot reads at a lowered t_read so recorded histories violate RSS")
)

func main() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *chaos != "" && *chaos != "stale-reads" {
		fmt.Fprintf(os.Stderr, "unknown -chaos mode %q (supported: stale-reads)\n", *chaos)
		os.Exit(2)
	}
	srv := server.New(server.Config{
		Shards:          *shards,
		MaxFrame:        *maxFrame,
		Epsilon:         *epsilon,
		CommitEstimate:  *commitEst,
		ChaosStaleReads: *chaos == "stale-reads",
	})
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: listening on %s with %d shards", srv.Addr(), srv.Shards())
	if *chaos != "" {
		log.Printf("rsskvd: CHAOS MODE %q — serving deliberately stale snapshot reads", *chaos)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			s := srv.Stats()
			log.Printf("rsskvd: conns=%d gets=%d puts=%d commits=%d aborts=%d fences=%d rotxns=%d roblocked=%d roskips=%d",
				s.Conns.Load(), s.Gets.Load(), s.Puts.Load(),
				s.Commits.Load(), s.Aborts.Load(), s.Fences.Load(),
				s.ROs.Load(), s.ROBlocked.Load(), s.ROSkips.Load())
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			srv.Close()
			return
		}
	}
}
