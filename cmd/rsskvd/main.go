// Command rsskvd is the networked RSS key-value daemon: a sharded,
// strictly serializable (hence RSS) key-value server speaking the wire
// protocol of internal/wire. With -replicas=N every shard leads a
// replication group of N-1 followers and snapshot reads are served from
// replicas bounded by the replicated t_safe. Drive it with
// internal/kvclient or `rssbench loadgen`, which also verifies recorded
// histories with the paper's checker.
//
// With -mode=queue the daemon serves the composition experiments' FIFO
// queue service instead (internal/queue's live server): leader-sequenced,
// linearizable, OpEnqueue/OpDequeue/OpFence only, with -replicas backup
// acceptors on the live replication transport.
//
// Usage:
//
//	rsskvd [-addr :7365] [-mode kv|queue] [-shards 8] [-replicas 3]
//	       [-stats 10s] [-chaos mode] [-po-lag 0]
//
// Chaos modes (each breaks exactly one RSS condition; recorded histories
// must be rejected by the checker): stale-reads, delayed-applies,
// dropped-lock-release, lost-commit-wait. -po-lag > 0 is the
// PO-serializability ablation used by `rssbench composition -fences=off`:
// session-consistent snapshot reads that lag real time, making the daemon
// sequentially consistent per session rather than RSS.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsskv/internal/queue"
	"rsskv/internal/server"
)

var (
	addr      = flag.String("addr", ":7365", "listen address")
	mode      = flag.String("mode", "kv", "daemon personality: kv | queue")
	shards    = flag.Int("shards", 8, "number of keyspace shards (kv mode)")
	replicas  = flag.Int("replicas", 1, "kv: copies per shard including the leader (>1 serves snapshot reads from followers); queue: backup acceptors + 1")
	maxFrame  = flag.Int("maxframe", 0, "max accepted frame size in bytes (0 = default 1 MiB)")
	statsEvy  = flag.Duration("stats", 10*time.Second, "stats logging interval (0 disables)")
	epsilon   = flag.Duration("eps", 0, "TrueTime uncertainty bound ε (adds ~2ε commit wait per mutation); on separate machines size it to the real clock-sync bound or cross-server t_min propagation breaks")
	commitEst = flag.Duration("commit-est", 0, "advertised earliest-end-time estimate t_ee for commits; >0 lets snapshot reads skip concurrent preparers (§5) at the cost of delaying commit responses until the estimate passes")
	chaos     = flag.String("chaos", "", "fault injection: stale-reads | delayed-applies | dropped-lock-release | lost-commit-wait (recorded histories violate RSS)")
	poLag     = flag.Duration("po-lag", 0, "PO-serializability ablation: serve snapshot reads this far behind real time, session floor preserved (recorded cross-service histories violate RSS; the fences-off composition twin)")
)

// queueMain runs the daemon as the live queue service.
func queueMain() {
	srv := queue.NewServer(queue.ServerConfig{MaxFrame: *maxFrame, Acceptors: *replicas - 1})
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: queue mode, listening on %s with %d acceptors", srv.Addr(), srv.Acceptors())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			s := srv.Stats()
			log.Printf("rsskvd: conns=%d enqueues=%d dequeues=%d empties=%d fences=%d acked=%d",
				s.Conns.Load(), s.Enqueues.Load(), s.Dequeues.Load(),
				s.Empties.Load(), s.Fences.Load(), srv.AckedWatermark())
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			srv.Close()
			return
		}
	}
}

func main() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	switch *mode {
	case "queue":
		queueMain()
		return
	case "kv":
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (supported: kv, queue)\n", *mode)
		os.Exit(2)
	}
	cfg := server.Config{
		Shards:         *shards,
		Replicas:       *replicas,
		MaxFrame:       *maxFrame,
		Epsilon:        *epsilon,
		CommitEstimate: *commitEst,
		POReadLag:      *poLag,
	}
	if err := cfg.ApplyChaosMode(*chaos, func(f string, a ...any) { log.Printf("rsskvd: "+f, a...) }); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv := server.New(cfg)
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: listening on %s with %d shards x %d replicas", srv.Addr(), srv.Shards(), srv.Replicas())
	if *chaos != "" {
		log.Printf("rsskvd: CHAOS MODE %q — recorded histories will violate RSS", *chaos)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			s := srv.Stats()
			line := fmt.Sprintf("conns=%d gets=%d puts=%d commits=%d aborts=%d fences=%d rotxns=%d roblocked=%d roskips=%d",
				s.Conns.Load(), s.Gets.Load(), s.Puts.Load(),
				s.Commits.Load(), s.Aborts.Load(), s.Fences.Load(),
				s.ROs.Load(), s.ROBlocked.Load(), s.ROSkips.Load())
			if srv.Replicas() > 1 {
				line += fmt.Sprintf(" rofollower=%d rofallback=%d replag=%s",
					s.ROFollower.Load(), s.ROFallback.Load(), srv.ReplicationLag())
			}
			log.Printf("rsskvd: %s", line)
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			srv.Close()
			return
		}
	}
}
