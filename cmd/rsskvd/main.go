// Command rsskvd is the networked RSS key-value daemon: a sharded,
// strictly serializable (hence RSS) key-value server speaking the wire
// protocol of internal/wire. With -replicas=N every shard leads a
// replication group of N-1 followers and snapshot reads are served from
// replicas bounded by the replicated t_safe. Drive it with
// internal/kvclient or `rssbench loadgen`, which also verifies recorded
// histories with the paper's checker.
//
// Usage:
//
//	rsskvd [-addr :7365] [-shards 8] [-replicas 3] [-stats 10s] [-chaos mode]
//
// Chaos modes (each breaks exactly one RSS condition; recorded histories
// must be rejected by the checker): stale-reads, delayed-applies,
// dropped-lock-release, lost-commit-wait.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsskv/internal/server"
)

var (
	addr      = flag.String("addr", ":7365", "listen address")
	shards    = flag.Int("shards", 8, "number of keyspace shards")
	replicas  = flag.Int("replicas", 1, "copies per shard including the leader; >1 serves snapshot reads from followers bounded by the replicated t_safe")
	maxFrame  = flag.Int("maxframe", 0, "max accepted frame size in bytes (0 = default 1 MiB)")
	statsEvy  = flag.Duration("stats", 10*time.Second, "stats logging interval (0 disables)")
	epsilon   = flag.Duration("eps", 0, "TrueTime uncertainty bound ε (adds ~2ε commit wait per mutation)")
	commitEst = flag.Duration("commit-est", 0, "advertised earliest-end-time estimate t_ee for commits; >0 lets snapshot reads skip concurrent preparers (§5) at the cost of delaying commit responses until the estimate passes")
	chaos     = flag.String("chaos", "", "fault injection: stale-reads | delayed-applies | dropped-lock-release | lost-commit-wait (recorded histories violate RSS)")
)

func main() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	cfg := server.Config{
		Shards:         *shards,
		Replicas:       *replicas,
		MaxFrame:       *maxFrame,
		Epsilon:        *epsilon,
		CommitEstimate: *commitEst,
	}
	if err := cfg.ApplyChaosMode(*chaos, func(f string, a ...any) { log.Printf("rsskvd: "+f, a...) }); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv := server.New(cfg)
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: listening on %s with %d shards x %d replicas", srv.Addr(), srv.Shards(), srv.Replicas())
	if *chaos != "" {
		log.Printf("rsskvd: CHAOS MODE %q — recorded histories will violate RSS", *chaos)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			s := srv.Stats()
			line := fmt.Sprintf("conns=%d gets=%d puts=%d commits=%d aborts=%d fences=%d rotxns=%d roblocked=%d roskips=%d",
				s.Conns.Load(), s.Gets.Load(), s.Puts.Load(),
				s.Commits.Load(), s.Aborts.Load(), s.Fences.Load(),
				s.ROs.Load(), s.ROBlocked.Load(), s.ROSkips.Load())
			if srv.Replicas() > 1 {
				line += fmt.Sprintf(" rofollower=%d rofallback=%d replag=%s",
					s.ROFollower.Load(), s.ROFallback.Load(), srv.ReplicationLag())
			}
			log.Printf("rsskvd: %s", line)
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			srv.Close()
			return
		}
	}
}
