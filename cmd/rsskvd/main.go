// Command rsskvd is the networked RSS key-value daemon: a sharded,
// strictly serializable (hence RSS) key-value server speaking the wire
// protocol of internal/wire. With -replicas=N every shard leads a
// replication group of N-1 in-process followers and snapshot reads are
// served from replicas bounded by the replicated t_safe. Drive it with
// internal/kvclient or `rssbench loadgen`, which also verifies recorded
// histories with the paper's checker.
//
// Followers can also live in other processes: a kv-mode daemon accepts
// replica joins by default (-accept-replicas), and
//
//	rsskvd -mode=replica -join=<leader addr> [-addr 127.0.0.1:0]
//
// runs an out-of-process follower: one replica per leader shard, pulling
// the replicated logs over the wire protocol (snapshot catch-up included,
// so it may join, fall behind leader-side log truncation, die, and rejoin
// at any time), serving snapshot reads on its own listener whenever its
// acknowledged t_safe is fresh enough for the leader's router.
//
// With -mode=queue the daemon serves the composition experiments' FIFO
// queue service instead (internal/queue's live server): leader-sequenced,
// linearizable, OpEnqueue/OpDequeue/OpFence only, with -replicas backup
// acceptors on the live replication transport.
//
// Usage:
//
//	rsskvd [-addr :7365] [-mode kv|queue|replica] [-shards 8] [-replicas 3]
//	       [-join addr] [-advertise addr] [-stats 10s] [-chaos mode] [-po-lag 0]
//	       [-slowop 0] [-pprof addr] [-data-dir dir] [-ckpt-bytes n]
//
// With -data-dir every shard group-commits a write-ahead log and takes
// periodic checkpoints under the directory; a restart with the same
// -data-dir replays them — resolving any in-flight 2PC — and serves from
// the recovered state, with surviving replicas resyncing from the
// recovered log instead of a forced full snapshot. See internal/wal.
//
// Every personality answers OpMetrics with its counters, gauges, and
// per-stage latency histograms; scrape one daemon or a whole fleet with
// `rssbench metrics -addrs=...`. -slowop logs per-stage timelines of
// transactions slower than the threshold (kv mode), and -pprof serves the
// stdlib profiling handlers on a separate listener.
//
// Chaos modes (each breaks exactly one RSS condition; recorded histories
// must be rejected by the checker): stale-reads, delayed-applies,
// dropped-lock-release, lost-commit-wait. In replica mode only
// delayed-applies applies (the replica acknowledges watermarks ahead of
// its applies). -po-lag > 0 is the PO-serializability ablation used by
// `rssbench composition -fences=off`: session-consistent snapshot reads
// that lag real time, making the daemon sequentially consistent per
// session rather than RSS.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsskv/internal/queue"
	"rsskv/internal/replication"
	"rsskv/internal/server"
	"rsskv/internal/viewchange"
)

var (
	addr       = flag.String("addr", ":7365", "listen address (replica mode: the read listener the leader dials back)")
	mode       = flag.String("mode", "kv", "daemon personality: kv | queue | replica")
	shards     = flag.Int("shards", 8, "number of keyspace shards (kv mode)")
	replicas   = flag.Int("replicas", 1, "kv: copies per shard including the leader (>1 serves snapshot reads from followers); queue: backup acceptors + 1")
	joinAddr   = flag.String("join", "", "replica mode: the leader daemon to join (required)")
	advertise  = flag.String("advertise", "", "replica mode: read address the leader dials back (default: the listener address; set on multi-host deployments)")
	acceptRepl = flag.Bool("accept-replicas", true, "kv mode: accept out-of-process replica joins (rsskvd -mode=replica)")
	maxFrame   = flag.Int("maxframe", 0, "max accepted frame size in bytes (0 = default 1 MiB)")
	statsEvy   = flag.Duration("stats", 10*time.Second, "stats logging interval (0 disables)")
	epsilon    = flag.Duration("eps", 0, "TrueTime uncertainty bound ε (adds ~2ε commit wait per mutation); on separate machines size it to the real clock-sync bound or cross-server t_min propagation breaks")
	commitEst  = flag.Duration("commit-est", 0, "advertised earliest-end-time estimate t_ee for commits; >0 lets snapshot reads skip concurrent preparers (§5) at the cost of delaying commit responses until the estimate passes")
	chaos      = flag.String("chaos", "", "fault injection: stale-reads | delayed-applies | dropped-lock-release | lost-commit-wait (recorded histories violate RSS)")
	poLag      = flag.Duration("po-lag", 0, "PO-serializability ablation: serve snapshot reads this far behind real time, session floor preserved (recorded cross-service histories violate RSS; the fences-off composition twin)")
	applyBatch = flag.Int("apply-batch", 0, "kv mode: max closures per shard apply-loop drain / replication entries per batched append (0 = default 64; negative clamps to 1, the entry-at-a-time pipeline)")
	admitQPS   = flag.Float64("admit-qps", 0, "kv mode: admission-control throughput cap in ops/s, split over shards; excess arrivals are delayed then rejected with a retry hint (0 = admission disabled)")
	admitQueue = flag.Int("admit-queue", 0, "kv mode: per-shard admission delay-queue bound; overflow rejects immediately (0 = default 64)")
	admitDeadl = flag.Duration("admit-deadline", 0, "kv mode: longest a delayed arrival waits for admission before rejection (0 = default 5ms)")
	dataDir    = flag.String("data-dir", "", "kv mode: write per-shard WALs and checkpoints under this directory and recover from them on restart (empty = no durability)")
	ckptBytes  = flag.Int64("ckpt-bytes", 0, "kv mode: checkpoint after this many WAL bytes per shard (0 = default 4 MiB; needs -data-dir)")
	slowOp     = flag.Duration("slowop", 0, "kv mode: log any transaction slower than this with its per-stage timeline (0 disables)")
	pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	epoch      = flag.Uint64("epoch", 0, "kv mode: view epoch this leader serves (0 = default 1); stamped on every replication entry and WAL record")
	syncRepl   = flag.Bool("sync-repl", false, "kv/replica mode: synchronous replication — withhold responses until a live follower acknowledged the batch (needs -data-dir); required for acknowledged writes to survive failover")
	promoAfter = flag.Duration("promote-after", 0, "replica mode: self-promote to leader when the leader has answered nothing for this long (0 = only explicit OpPromote orders)")
	promoAddr  = flag.String("promote-addr", "127.0.0.1:0", "replica mode: address the promoted server listens on")
	noFence    = flag.Bool("no-fence", false, "replica mode CHAOS: promote without fencing — keep following and acknowledging the old leader while serving as the new one (split brain; recorded histories must be rejected)")
)

// startPprof serves the stdlib pprof handlers on their own listener, kept
// off the data-plane port so profiling never competes with wire traffic.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("rsskvd: pprof on http://%s/debug/pprof/", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("rsskvd: pprof listener: %v", err)
		}
	}()
}

// queueMain runs the daemon as the live queue service.
func queueMain() {
	srv := queue.NewServer(queue.ServerConfig{MaxFrame: *maxFrame, Acceptors: *replicas - 1})
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: queue mode, listening on %s with %d acceptors", srv.Addr(), srv.Acceptors())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			s := srv.Stats()
			log.Printf("rsskvd: conns=%d enqueues=%d dequeues=%d empties=%d fences=%d acked=%d",
				s.Conns.Load(), s.Enqueues.Load(), s.Dequeues.Load(),
				s.Empties.Load(), s.Fences.Load(), srv.AckedWatermark())
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			srv.Close()
			return
		}
	}
}

// replicaMain runs the daemon as an out-of-process follower of -join.
func replicaMain() {
	if *joinAddr == "" {
		fmt.Fprintln(os.Stderr, "replica mode needs -join=<leader addr>")
		os.Exit(2)
	}
	var nodeChaos replication.Chaos
	switch *chaos {
	case "":
	case "delayed-applies":
		nodeChaos = replication.Chaos{DelayedApplies: true, ApplyDelay: 10 * time.Millisecond}
	default:
		fmt.Fprintf(os.Stderr, "replica mode supports only -chaos=delayed-applies, not %q\n", *chaos)
		os.Exit(2)
	}
	node, err := replication.StartNode(replication.NodeConfig{
		Leader:    *joinAddr,
		Addr:      *addr,
		Advertise: *advertise,
		MaxFrame:  *maxFrame, // 0 keeps the snapshot-sized node default
		Chaos:     nodeChaos,
	})
	if err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: replica mode, joined %s with %d shard replicas, serving reads on %s (advertised %s)",
		*joinAddr, node.Shards(), node.Addr(), node.Advertise())
	sup, err := viewchange.New(viewchange.Config{
		Node:         node,
		Leader:       *joinAddr,
		PromoteAddr:  *promoAddr,
		PromoteAfter: *promoAfter,
		NoFence:      *noFence,
		Server: server.Config{
			MaxFrame:         *maxFrame,
			Epsilon:          *epsilon,
			CommitEstimate:   *commitEst,
			AllowReplicaJoin: *acceptRepl,
			ApplyBatchMax:    *applyBatch,
			SyncRepl:         *syncRepl,
			DataDir:          *dataDir,
			CheckpointBytes:  *ckptBytes,
		},
	})
	if err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	if *promoAfter > 0 {
		log.Printf("rsskvd: will self-promote after %s of leader silence (promoted server on %s)", *promoAfter, *promoAddr)
	}
	if *chaos != "" || *noFence {
		log.Printf("rsskvd: CHAOS MODE — recorded histories will violate RSS")
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	promoted := false
	for {
		select {
		case <-tick:
			if srv := sup.Promoted(); srv != nil {
				if !promoted {
					promoted = true
					e, _ := sup.View()
					log.Printf("rsskvd: PROMOTED to leader of epoch %d, serving on %s", e, srv.Addr())
				}
				s := srv.Stats()
				log.Printf("rsskvd: (promoted) conns=%d gets=%d puts=%d commits=%d rotxns=%d",
					s.Conns.Load(), s.Gets.Load(), s.Puts.Load(), s.Commits.Load(), s.ROs.Load())
				continue
			}
			log.Printf("rsskvd: pulls=%d snapshots=%d min-tsafe=%d epoch=%d",
				node.Pulls(), node.Snapshots(), node.MinTSafe(), node.MaxEpoch())
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			sup.Close()
			if srv := sup.Promoted(); srv != nil {
				srv.Close()
			}
			node.Close()
			return
		}
	}
}

func main() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	startPprof(*pprofAddr)
	switch *mode {
	case "queue":
		queueMain()
		return
	case "replica":
		replicaMain()
		return
	case "kv":
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (supported: kv, queue, replica)\n", *mode)
		os.Exit(2)
	}
	cfg := server.Config{
		Shards:           *shards,
		Replicas:         *replicas,
		MaxFrame:         *maxFrame,
		Epsilon:          *epsilon,
		CommitEstimate:   *commitEst,
		POReadLag:        *poLag,
		AllowReplicaJoin: *acceptRepl,
		ApplyBatchMax:    *applyBatch,
		AdmitQPS:         *admitQPS,
		AdmitQueue:       *admitQueue,
		AdmitDeadline:    *admitDeadl,
		SlowOpThreshold:  *slowOp,
		DataDir:          *dataDir,
		CheckpointBytes:  *ckptBytes,
		Epoch:            *epoch,
		SyncRepl:         *syncRepl,
	}
	if err := cfg.ApplyChaosMode(*chaos, func(f string, a ...any) { log.Printf("rsskvd: "+f, a...) }); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv, err := server.Open(cfg)
	if err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	if rec := srv.Recovery(); rec.Records > 0 || rec.Checkpoints > 0 || rec.PreparesRestored > 0 {
		log.Printf("rsskvd: recovered %d checkpoints, %d log records, %d torn tails; %d dangling prepares (%d committed, %d aborted)",
			rec.Checkpoints, rec.Records, rec.TornTails,
			rec.PreparesRestored, rec.PreparesCommitted, rec.PreparesAborted)
	}
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: listening on %s with %d shards x %d replicas", srv.Addr(), srv.Shards(), srv.Replicas())
	if *chaos != "" {
		log.Printf("rsskvd: CHAOS MODE %q — recorded histories will violate RSS", *chaos)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			s := srv.Stats()
			line := fmt.Sprintf("conns=%d gets=%d puts=%d commits=%d aborts=%d fences=%d rotxns=%d roblocked=%d roskips=%d",
				s.Conns.Load(), s.Gets.Load(), s.Puts.Load(),
				s.Commits.Load(), s.Aborts.Load(), s.Fences.Load(),
				s.ROs.Load(), s.ROBlocked.Load(), s.ROSkips.Load())
			if srv.Replicas() > 1 || s.ReplicaJoins.Load() > 0 {
				line += fmt.Sprintf(" rofollower=%d (chan=%d sock=%d) rofallback=%d joins=%d snapshots=%d replag=%s",
					s.ROFollower.Load(), s.ROFollowerChan.Load(), s.ROFollowerSock.Load(),
					s.ROFallback.Load(), s.ReplicaJoins.Load(), s.ReplSnapshots.Load(),
					srv.ReplicationLag())
			}
			if *admitQPS > 0 {
				line += fmt.Sprintf(" admitrejects=%d admitdelays=%d",
					s.AdmitRejects.Load(), s.AdmitDelayed.Load())
			}
			log.Printf("rsskvd: %s", line)
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			srv.Close()
			return
		}
	}
}
