// Command rsskvd is the networked RSS key-value daemon: a sharded,
// strictly serializable (hence RSS) key-value server speaking the wire
// protocol of internal/wire. Drive it with internal/kvclient or
// `rssbench loadgen`, which also verifies recorded histories with the
// paper's checker.
//
// Usage:
//
//	rsskvd [-addr :7365] [-shards 8] [-stats 10s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsskv/internal/server"
)

var (
	addr     = flag.String("addr", ":7365", "listen address")
	shards   = flag.Int("shards", 8, "number of keyspace shards")
	maxFrame = flag.Int("maxframe", 0, "max accepted frame size in bytes (0 = default 1 MiB)")
	statsEvy = flag.Duration("stats", 10*time.Second, "stats logging interval (0 disables)")
)

func main() {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	srv := server.New(server.Config{Shards: *shards, MaxFrame: *maxFrame})
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("rsskvd: %v", err)
	}
	log.Printf("rsskvd: listening on %s with %d shards", srv.Addr(), srv.Shards())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsEvy > 0 {
		t := time.NewTicker(*statsEvy)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			s := srv.Stats()
			log.Printf("rsskvd: conns=%d gets=%d puts=%d commits=%d aborts=%d fences=%d",
				s.Conns.Load(), s.Gets.Load(), s.Puts.Load(),
				s.Commits.Load(), s.Aborts.Load(), s.Fences.Load())
		case sig := <-stop:
			log.Printf("rsskvd: %v, shutting down", sig)
			srv.Close()
			return
		}
	}
}
